// Unit tests for the fluid traffic engine: demand routing down the data
// path, m-VIP (two-layer) indirection, network contention, VM serving
// caps, and unrouted-demand accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mdc/core/viprip_manager.hpp"
#include "mdc/scenario/fluid_engine.hpp"

namespace mdc {
namespace {

struct World {
  Simulation sim;
  Topology topo;
  AppRegistry apps;
  AuthoritativeDns dns;
  RouteRegistry routes{0.0};
  SwitchFleet fleet;
  HostFleet hosts;
  std::unique_ptr<ResolverPopulation> resolvers;
  std::unique_ptr<StaticDemand> demand;
  std::unique_ptr<VipRipManager> viprip;
  std::unique_ptr<FluidEngine> engine;
  AppId app;

  static TopologyConfig topoConfig(FabricKind fabric) {
    TopologyConfig cfg;
    cfg.numServers = 4;
    cfg.serverCapacity = CapacityVec{32.0, 128.0, 2.0};
    cfg.numIsps = 2;
    cfg.accessLinksPerIsp = 1;
    cfg.accessLinkGbps = 1.0;
    cfg.numSwitches = 3;
    cfg.switchTrunkGbps = 1.0;
    cfg.fabric = fabric;
    cfg.siloCount = 2;
    cfg.siloUplinkGbps = 0.5;
    return cfg;
  }

  explicit World(double appRps = 10'000.0,
                 FabricKind fabric = FabricKind::ModernNonBlocking)
      : topo(topoConfig(fabric)), hosts(topo, sim, HostCostModel{}) {
    for (int i = 0; i < 3; ++i) fleet.addSwitch(SwitchLimits{});
    app = apps.create("web", AppSla{}, appRps);
    dns.registerApp(app);
    resolvers = std::make_unique<ResolverPopulation>(dns, ResolverConfig{});
    demand = std::make_unique<StaticDemand>(std::vector<double>{appRps});
    viprip = std::make_unique<VipRipManager>(sim, fleet, dns, routes, apps,
                                             topo, VipRipManager::Options{});
    engine = std::make_unique<FluidEngine>(sim, topo, apps, dns, *resolvers,
                                           routes, fleet, hosts, *demand,
                                           *viprip, FluidEngine::Options{});
  }

  VmId vm(ServerId srv, double servableRps) {
    const auto v = hosts.createVm(
        app, srv, apps.app(app).sla.sliceFor(servableRps, 1.0));
    EXPECT_TRUE(v.ok());
    sim.runUntil(sim.now() + 61.0);  // boot
    return v.value();
  }

  void wireVip(VipId vip, SwitchId sw, std::uint32_t ar,
               std::initializer_list<std::pair<VmId, double>> rips,
               double dnsWeight = 1.0) {
    ASSERT_TRUE(fleet.configureVip(sw, vip, app).ok());
    std::uint32_t ripId = vip.value() * 16;
    for (const auto& [vmId, w] : rips) {
      RipEntry e;
      e.rip = RipId{ripId++};
      e.vm = vmId;
      e.weight = w;
      ASSERT_TRUE(fleet.addRip(vip, e).ok());
    }
    dns.addVip(app, vip, dnsWeight);
    routes.advertise(vip, AccessRouterId{ar}, sim.now());
    routes.settle(sim.now());
  }
};

TEST(FluidEngine, RoutesDemandToSingleVm) {
  World w{5000.0};
  const VmId vm = w.vm(ServerId{0}, 10'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{vm, 1.0}});
  const EpochReport r = w.engine->step();
  EXPECT_NEAR(w.hosts.vm(vm).offeredRps, 5000.0, 1e-6);
  EXPECT_NEAR(w.hosts.vm(vm).servedRps, 5000.0, 1e-6);
  EXPECT_NEAR(r.appServedRps.at(w.app), 5000.0, 1e-6);
  EXPECT_EQ(r.unroutedRps, 0.0);
  // 5 krps * 0.04 Gbps/krps = 0.2 Gbps on the access link (cap 1.0).
  EXPECT_NEAR(r.accessLinkUtil[0], 0.2, 1e-9);
  EXPECT_NEAR(r.switchUtil[0], 0.2, 1e-9);
}

TEST(FluidEngine, SplitsByRipWeights) {
  World w{9000.0};
  const VmId a = w.vm(ServerId{0}, 20'000.0);
  const VmId b = w.vm(ServerId{1}, 20'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{a, 2.0}, {b, 1.0}});
  (void)w.engine->step();
  EXPECT_NEAR(w.hosts.vm(a).offeredRps, 6000.0, 1e-6);
  EXPECT_NEAR(w.hosts.vm(b).offeredRps, 3000.0, 1e-6);
}

TEST(FluidEngine, SplitsByDnsWeightAcrossVips) {
  World w{8000.0};
  const VmId a = w.vm(ServerId{0}, 20'000.0);
  const VmId b = w.vm(ServerId{1}, 20'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{a, 1.0}}, 3.0);
  w.wireVip(VipId{1}, SwitchId{1}, 1, {{b, 1.0}}, 1.0);
  (void)w.engine->step();
  EXPECT_NEAR(w.hosts.vm(a).offeredRps, 6000.0, 1e-6);
  EXPECT_NEAR(w.hosts.vm(b).offeredRps, 2000.0, 1e-6);
}

TEST(FluidEngine, VmCapacityCapsServing) {
  World w{10'000.0};
  const VmId vm = w.vm(ServerId{0}, 4'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{vm, 1.0}});
  const EpochReport r = w.engine->step();
  EXPECT_NEAR(w.hosts.vm(vm).offeredRps, 10'000.0, 1e-6);
  EXPECT_NEAR(w.hosts.vm(vm).servedRps, 4'000.0, 1.0);
  EXPECT_NEAR(r.appServedRps.at(w.app), 4'000.0, 1.0);
}

TEST(FluidEngine, AccessLinkContentionLimitsServing) {
  // 50 krps = 2.0 Gbps through a 1.0 Gbps access link -> half served.
  World w{50'000.0};
  // Two VMs on separate servers so their NICs (2 Gbps each) are not the
  // bottleneck — the shared access link is.
  const VmId vm = w.vm(ServerId{0}, 30'000.0);
  const VmId vm2 = w.vm(ServerId{1}, 30'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{vm, 1.0}, {vm2, 1.0}});
  const EpochReport r = w.engine->step();
  EXPECT_GT(r.accessLinkUtil[0], 1.9);  // offered, not served
  const double served = r.appServedRps.at(w.app);
  // Bottleneck math: access link allows 1.0/2.0 of demand.
  EXPECT_NEAR(served, 25'000.0, 500.0);
}

TEST(FluidEngine, TwoLayerMvipIndirection) {
  // external VIP on switch 0 -> m-VIPs on switches 1,2 -> VMs.
  World w{8000.0};
  const VmId a = w.vm(ServerId{0}, 20'000.0);
  const VmId b = w.vm(ServerId{1}, 20'000.0);
  // m-VIPs (no DNS, no routes: internal).
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{1}, VipId{10}, w.app).ok());
  RipEntry ra;
  ra.rip = RipId{100};
  ra.vm = a;
  ASSERT_TRUE(w.fleet.addRip(VipId{10}, ra).ok());
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{2}, VipId{11}, w.app).ok());
  RipEntry rb;
  rb.rip = RipId{101};
  rb.vm = b;
  ASSERT_TRUE(w.fleet.addRip(VipId{11}, rb).ok());
  // External VIP maps to the two m-VIPs 3:1.
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{0}, VipId{0}, w.app).ok());
  RipEntry m0;
  m0.rip = RipId{0};
  m0.mvip = VipId{10};
  m0.weight = 3.0;
  ASSERT_TRUE(w.fleet.addRip(VipId{0}, m0).ok());
  RipEntry m1;
  m1.rip = RipId{1};
  m1.mvip = VipId{11};
  m1.weight = 1.0;
  ASSERT_TRUE(w.fleet.addRip(VipId{0}, m1).ok());
  w.dns.addVip(w.app, VipId{0}, 1.0);
  w.routes.advertise(VipId{0}, AccessRouterId{0}, w.sim.now());
  w.routes.settle(w.sim.now());

  const EpochReport r = w.engine->step();
  EXPECT_NEAR(w.hosts.vm(a).offeredRps, 6000.0, 1e-6);
  EXPECT_NEAR(w.hosts.vm(b).offeredRps, 2000.0, 1e-6);
  EXPECT_EQ(r.unroutedRps, 0.0);
  // Both layers' trunks carry the traffic: external switch all of it,
  // m-VIP switches their shares.
  EXPECT_NEAR(r.switchUtil[0], 8000.0 * 0.04 / 1000.0, 1e-9);
  EXPECT_NEAR(r.switchUtil[1], 6000.0 * 0.04 / 1000.0, 1e-9);
  EXPECT_NEAR(r.switchUtil[2], 2000.0 * 0.04 / 1000.0, 1e-9);
}

TEST(FluidEngine, MvipCycleDropsAtDepthLimit) {
  World w{1000.0};
  // VIP 0 -> m-VIP 1 -> m-VIP 0 (cycle).
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{0}, VipId{0}, w.app).ok());
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{1}, VipId{1}, w.app).ok());
  RipEntry a;
  a.rip = RipId{0};
  a.mvip = VipId{1};
  ASSERT_TRUE(w.fleet.addRip(VipId{0}, a).ok());
  RipEntry b;
  b.rip = RipId{1};
  b.mvip = VipId{0};
  ASSERT_TRUE(w.fleet.addRip(VipId{1}, b).ok());
  w.dns.addVip(w.app, VipId{0}, 1.0);
  w.routes.advertise(VipId{0}, AccessRouterId{0}, w.sim.now());
  w.routes.settle(w.sim.now());
  const EpochReport r = w.engine->step();
  EXPECT_NEAR(r.unroutedRps, 1000.0, 1e-6);
  EXPECT_GT(r.unroutedByCause.at("depth"), 0.0);
}

TEST(FluidEngine, TraditionalFabricSiloUplinkContends) {
  // On the traditional tree, the silo uplink (0.5 Gbps) sits on the path
  // and throttles a remote-server flow that the modern fabric would not.
  World w{30'000.0, FabricKind::TraditionalTree};
  const VmId vm = w.vm(ServerId{0}, 30'000.0);  // silo 0
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{vm, 1.0}});
  const EpochReport r = w.engine->step();
  // 30 krps = 1.2 Gbps; access link (1.0) and silo uplink (0.5) both on
  // the path; serving fraction = min(1/1.2, 0.5/1.2) = 0.4166.
  EXPECT_NEAR(r.appServedRps.at(w.app), 30'000.0 * 0.5 / 1.2, 100.0);

  World m{30'000.0, FabricKind::ModernNonBlocking};
  const VmId vm2 = m.vm(ServerId{0}, 30'000.0);
  m.wireVip(VipId{0}, SwitchId{0}, 0, {{vm2, 1.0}});
  const EpochReport r2 = m.engine->step();
  EXPECT_GT(r2.appServedRps.at(m.app), r.appServedRps.at(w.app));
}

TEST(FluidEngine, UnroutedCausesAccounted) {
  World w{1000.0};
  // Case: VIP exposed in DNS but not configured on any switch.
  w.dns.addVip(w.app, VipId{5}, 1.0);
  w.routes.advertise(VipId{5}, AccessRouterId{0}, w.sim.now());
  w.routes.settle(w.sim.now());
  const EpochReport r = w.engine->step();
  EXPECT_NEAR(r.unroutedByCause.at("no_owner"), 1000.0, 1e-6);
}

TEST(FluidEngine, NoRouteMeansUnrouted) {
  World w{1000.0};
  const VmId vm = w.vm(ServerId{0}, 5'000.0);
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{0}, VipId{0}, w.app).ok());
  RipEntry e;
  e.rip = RipId{0};
  e.vm = vm;
  ASSERT_TRUE(w.fleet.addRip(VipId{0}, e).ok());
  w.dns.addVip(w.app, VipId{0}, 1.0);
  // never advertised
  const EpochReport r = w.engine->step();
  EXPECT_NEAR(r.unroutedByCause.at("no_route"), 1000.0, 1e-6);
}

TEST(FluidEngine, MultiRouterVipSplitsAcrossLinks) {
  World w{8000.0};
  const VmId vm = w.vm(ServerId{0}, 20'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{vm, 1.0}});
  // Also advertise the same VIP at the second router.
  w.routes.advertise(VipId{0}, AccessRouterId{1}, w.sim.now());
  w.routes.settle(w.sim.now());
  const EpochReport r = w.engine->step();
  EXPECT_NEAR(r.accessLinkUtil[0], r.accessLinkUtil[1], 1e-9);
  EXPECT_NEAR(r.accessLinkUtil[0], 4000.0 * 0.04 / 1000.0, 1e-9);
}

TEST(FluidEngine, SeriesRecorded) {
  World w{1000.0};
  const VmId vm = w.vm(ServerId{0}, 5'000.0);
  w.wireVip(VipId{0}, SwitchId{0}, 0, {{vm, 1.0}});
  int epochs = 0;
  w.engine->start([&](const EpochReport&) { ++epochs; });
  w.sim.runUntil(w.sim.now() + 26.0);
  EXPECT_GE(epochs, 5);
  EXPECT_EQ(w.engine->satisfaction().size(),
            static_cast<std::size_t>(epochs));
  EXPECT_NEAR(w.engine->satisfaction().last(), 1.0, 1e-9);
}

}  // namespace
}  // namespace mdc
