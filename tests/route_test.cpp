// Unit tests for BGP-style advertisement dynamics.
#include <gtest/gtest.h>

#include <cmath>

#include "mdc/route/route_registry.hpp"

namespace mdc {
namespace {

constexpr VipId kVip{1};
constexpr AccessRouterId kAr0{0};
constexpr AccessRouterId kAr1{1};

TEST(RouteRegistry, AdvertisementPropagates) {
  RouteRegistry reg{30.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(0.0);
  EXPECT_FALSE(reg.isActive(kVip, kAr0));  // still announcing
  reg.settle(29.9);
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  reg.settle(30.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
  EXPECT_TRUE(reg.isReachable(kVip, kAr0));
}

TEST(RouteRegistry, ZeroDelayIsImmediate) {
  RouteRegistry reg{0.0};
  reg.advertise(kVip, kAr0, 5.0);
  reg.settle(5.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
}

TEST(RouteRegistry, PaddedRouteDrainsButStaysReachable) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(10.0);
  reg.pad(kVip, kAr0, 10.0);
  // Conservatively no new traffic immediately after padding.
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  EXPECT_TRUE(reg.isReachable(kVip, kAr0));
  reg.settle(100.0);
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  EXPECT_TRUE(reg.isReachable(kVip, kAr0));
}

TEST(RouteRegistry, WithdrawalRemovesRoute) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(10.0);
  reg.withdraw(kVip, kAr0, 20.0);
  reg.settle(25.0);
  // Withdrawal still propagating: not active for new traffic.
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  reg.settle(30.0);
  EXPECT_FALSE(reg.isReachable(kVip, kAr0));
  EXPECT_TRUE(reg.activeRouters(kVip).empty());
}

TEST(RouteRegistry, ReAdvertiseAfterPadRestoresTraffic) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(10.0);
  reg.pad(kVip, kAr0, 10.0);
  reg.advertise(kVip, kAr0, 20.0);
  reg.settle(30.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
}

TEST(RouteRegistry, MultipleRoutersTrackedIndependently) {
  RouteRegistry reg{5.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.advertise(kVip, kAr1, 0.0);
  reg.settle(5.0);
  reg.pad(kVip, kAr0, 5.0);
  const auto active = reg.activeRouters(kVip);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], kAr1);
  EXPECT_EQ(reg.reachableRouters(kVip).size(), 2u);
}

TEST(RouteRegistry, UpdateCounting) {
  RouteRegistry reg{5.0};
  EXPECT_EQ(reg.routeUpdates(), 0u);
  reg.advertise(kVip, kAr0, 0.0);
  reg.pad(kVip, kAr0, 1.0);
  reg.withdraw(kVip, kAr0, 2.0);
  EXPECT_EQ(reg.routeUpdates(), 3u);
}

TEST(RouteRegistry, WithdrawDuringAnnounceNeverActivates) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.withdraw(kVip, kAr0, 5.0);  // before the announcement converged
  EXPECT_FALSE(reg.isReachable(kVip, kAr0));
  reg.settle(10.0);  // the announcement's original convergence time
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  reg.settle(15.0);  // withdrawal converges: entry is gone
  EXPECT_TRUE(reg.activeRouters(kVip).empty());
  EXPECT_TRUE(reg.reachableRouters(kVip).empty());
  // A fresh advertisement after the withdrawal behaves like day one.
  reg.advertise(kVip, kAr0, 20.0);
  reg.settle(30.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
}

TEST(RouteRegistry, AccessRouterWithdrawalDrainsEveryVipItServed) {
  // Decommissioning an access router withdraws every VIP it advertises;
  // new sessions keep landing on the surviving router throughout.
  RouteRegistry reg{5.0};
  const VipId vips[] = {VipId{1}, VipId{2}, VipId{3}};
  for (const VipId v : vips) {
    reg.advertise(v, kAr0, 0.0);
    reg.advertise(v, kAr1, 0.0);
  }
  reg.settle(5.0);
  for (const VipId v : vips) reg.withdraw(v, kAr0, 10.0);
  reg.settle(12.0);  // withdrawals still propagating
  for (const VipId v : vips) {
    EXPECT_FALSE(reg.isReachable(v, kAr0));
    EXPECT_TRUE(reg.isActive(v, kAr1));
  }
  reg.settle(15.0);
  for (const VipId v : vips) {
    const auto active = reg.activeRouters(v);
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0], kAr1);
  }
  EXPECT_EQ(reg.routeUpdates(), 9u);  // 6 advertisements + 3 withdrawals
}

TEST(RouteRegistry, RouteVersionBumpsOnUpdatesAndConvergence) {
  RouteRegistry reg{10.0};
  EXPECT_EQ(reg.routeVersion(kVip), 0u);  // never advertised
  reg.advertise(kVip, kAr0, 0.0);
  EXPECT_EQ(reg.routeVersion(kVip), 1u);
  reg.settle(5.0);  // nothing converges yet
  EXPECT_EQ(reg.routeVersion(kVip), 1u);
  reg.settle(10.0);  // Announcing -> Active
  EXPECT_EQ(reg.routeVersion(kVip), 2u);
  reg.settle(11.0);  // settled table: no spurious bump
  EXPECT_EQ(reg.routeVersion(kVip), 2u);
  reg.pad(kVip, kAr0, 12.0);  // takes effect immediately, no transition
  EXPECT_EQ(reg.routeVersion(kVip), 3u);
  reg.settle(30.0);
  EXPECT_EQ(reg.routeVersion(kVip), 3u);
  reg.advertise(kVip, kAr0, 30.0);  // un-pad: fresh announcement
  reg.settle(40.0);
  EXPECT_EQ(reg.routeVersion(kVip), 5u);  // update + convergence
  reg.withdraw(kVip, kAr0, 40.0);
  reg.settle(50.0);  // Withdrawing -> erased
  EXPECT_EQ(reg.routeVersion(kVip), 7u);
  EXPECT_EQ(reg.routeVersion(VipId{2}), 0u);  // other VIPs untouched
}

TEST(RouteRegistry, PadUnknownRouteThrows) {
  RouteRegistry reg{5.0};
  EXPECT_THROW(reg.pad(kVip, kAr0, 0.0), PreconditionError);
  EXPECT_THROW(reg.withdraw(kVip, kAr0, 0.0), PreconditionError);
}

TEST(RouteRegistry, PadAfterWithdrawThrows) {
  RouteRegistry reg{5.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.withdraw(kVip, kAr0, 1.0);
  EXPECT_THROW(reg.pad(kVip, kAr0, 2.0), PreconditionError);
}

TEST(RouteRegistry, NegativeDelayRejected) {
  EXPECT_THROW((RouteRegistry{-1.0}), PreconditionError);
}

}  // namespace
}  // namespace mdc
