// Unit tests for BGP-style advertisement dynamics.
#include <gtest/gtest.h>

#include <cmath>

#include "mdc/route/route_registry.hpp"

namespace mdc {
namespace {

constexpr VipId kVip{1};
constexpr AccessRouterId kAr0{0};
constexpr AccessRouterId kAr1{1};

TEST(RouteRegistry, AdvertisementPropagates) {
  RouteRegistry reg{30.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(0.0);
  EXPECT_FALSE(reg.isActive(kVip, kAr0));  // still announcing
  reg.settle(29.9);
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  reg.settle(30.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
  EXPECT_TRUE(reg.isReachable(kVip, kAr0));
}

TEST(RouteRegistry, ZeroDelayIsImmediate) {
  RouteRegistry reg{0.0};
  reg.advertise(kVip, kAr0, 5.0);
  reg.settle(5.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
}

TEST(RouteRegistry, PaddedRouteDrainsButStaysReachable) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(10.0);
  reg.pad(kVip, kAr0, 10.0);
  // Conservatively no new traffic immediately after padding.
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  EXPECT_TRUE(reg.isReachable(kVip, kAr0));
  reg.settle(100.0);
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  EXPECT_TRUE(reg.isReachable(kVip, kAr0));
}

TEST(RouteRegistry, WithdrawalRemovesRoute) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(10.0);
  reg.withdraw(kVip, kAr0, 20.0);
  reg.settle(25.0);
  // Withdrawal still propagating: not active for new traffic.
  EXPECT_FALSE(reg.isActive(kVip, kAr0));
  reg.settle(30.0);
  EXPECT_FALSE(reg.isReachable(kVip, kAr0));
  EXPECT_TRUE(reg.activeRouters(kVip).empty());
}

TEST(RouteRegistry, ReAdvertiseAfterPadRestoresTraffic) {
  RouteRegistry reg{10.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.settle(10.0);
  reg.pad(kVip, kAr0, 10.0);
  reg.advertise(kVip, kAr0, 20.0);
  reg.settle(30.0);
  EXPECT_TRUE(reg.isActive(kVip, kAr0));
}

TEST(RouteRegistry, MultipleRoutersTrackedIndependently) {
  RouteRegistry reg{5.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.advertise(kVip, kAr1, 0.0);
  reg.settle(5.0);
  reg.pad(kVip, kAr0, 5.0);
  const auto active = reg.activeRouters(kVip);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], kAr1);
  EXPECT_EQ(reg.reachableRouters(kVip).size(), 2u);
}

TEST(RouteRegistry, UpdateCounting) {
  RouteRegistry reg{5.0};
  EXPECT_EQ(reg.routeUpdates(), 0u);
  reg.advertise(kVip, kAr0, 0.0);
  reg.pad(kVip, kAr0, 1.0);
  reg.withdraw(kVip, kAr0, 2.0);
  EXPECT_EQ(reg.routeUpdates(), 3u);
}

TEST(RouteRegistry, PadUnknownRouteThrows) {
  RouteRegistry reg{5.0};
  EXPECT_THROW(reg.pad(kVip, kAr0, 0.0), PreconditionError);
  EXPECT_THROW(reg.withdraw(kVip, kAr0, 0.0), PreconditionError);
}

TEST(RouteRegistry, PadAfterWithdrawThrows) {
  RouteRegistry reg{5.0};
  reg.advertise(kVip, kAr0, 0.0);
  reg.withdraw(kVip, kAr0, 1.0);
  EXPECT_THROW(reg.pad(kVip, kAr0, 2.0), PreconditionError);
}

TEST(RouteRegistry, NegativeDelayRejected) {
  EXPECT_THROW((RouteRegistry{-1.0}), PreconditionError);
}

}  // namespace
}  // namespace mdc
