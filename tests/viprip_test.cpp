// Unit tests for the serialized VIP/RIP manager.
#include <gtest/gtest.h>

#include <cmath>

#include "mdc/core/viprip_manager.hpp"

namespace mdc {
namespace {

struct Fixture {
  Simulation sim;
  Topology topo;
  SwitchFleet fleet;
  AuthoritativeDns dns;
  RouteRegistry routes{2.0};
  AppRegistry apps;
  VipRipManager viprip;

  static TopologyConfig topoConfig() {
    TopologyConfig cfg;
    cfg.numServers = 8;
    cfg.numIsps = 2;
    cfg.accessLinksPerIsp = 1;
    cfg.numSwitches = 3;
    return cfg;
  }

  static VipRipManager::Options options() {
    VipRipManager::Options o;
    o.processSeconds = 0.1;
    o.reconfigSeconds = 1.0;
    return o;
  }

  static SwitchLimits smallSwitch() {
    SwitchLimits lim;
    lim.maxVips = 4;
    lim.maxRips = 8;
    return lim;
  }

  Fixture() : topo(topoConfig()),
              viprip(sim, fleet, dns, routes, apps, topo, options()) {
    for (int i = 0; i < 3; ++i) fleet.addSwitch(smallSwitch());
  }

  AppId makeApp() { return apps.create("a", AppSla{}, 100.0); }
};

TEST(VipRipManager, CreateVipNowPlacesOnEmptiestSwitch) {
  Fixture f;
  const AppId app = f.makeApp();
  const auto vip = f.viprip.createVipNow(app);
  ASSERT_TRUE(vip.ok());
  // Registered everywhere: fleet, DNS, app, route.
  EXPECT_TRUE(f.fleet.ownerOf(vip.value()).has_value());
  EXPECT_TRUE(f.dns.hasApp(app));
  EXPECT_EQ(f.dns.vips(app).size(), 1u);
  EXPECT_EQ(f.apps.app(app).vips.size(), 1u);
  EXPECT_NO_THROW((void)f.viprip.routerOf(vip.value()));
}

TEST(VipRipManager, VipsSpreadAcrossSwitches) {
  Fixture f;
  const AppId app = f.makeApp();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(f.viprip.createVipNow(app).ok());
  }
  // 6 VIPs over 3 switches -> 2 each with the occupancy-first policy.
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(f.fleet.at(SwitchId{s}).vipCount(), 2u);
  }
}

TEST(VipRipManager, VipsSpreadAcrossAccessRouters) {
  Fixture f;
  const AppId app = f.makeApp();
  ASSERT_TRUE(f.viprip.createVipNow(app).ok());
  ASSERT_TRUE(f.viprip.createVipNow(app).ok());
  const auto& vips = f.apps.app(app).vips;
  EXPECT_NE(f.viprip.routerOf(vips[0]), f.viprip.routerOf(vips[1]));
}

TEST(VipRipManager, CreateVipFailsWhenAllTablesFull) {
  Fixture f;
  const AppId app = f.makeApp();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(f.viprip.createVipNow(app).ok());
  }
  // Table exhaustion is a branchable error, not a contract violation —
  // recovery code retries on it.
  const auto r = f.viprip.createVipNow(app);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "vip_table_full");
}

TEST(VipRipManager, RejectedRequestStillInvokesDoneAndIsCounted) {
  Fixture f;
  const AppId app = f.makeApp();
  bool called = false;
  VipRipRequest req;
  req.op = VipRipOp::NewRip;  // fails: the app has no VIPs yet
  req.app = app;
  req.vm = VmId{0};
  req.done = [&](Status s) {
    called = true;
    EXPECT_EQ(s.error().code, "app_has_no_vips");
  };
  f.viprip.submit(std::move(req));
  f.sim.runUntil(5.0);
  EXPECT_TRUE(called);  // callers must always learn the outcome
  EXPECT_EQ(f.viprip.rejectedRequests(), 1u);
  ASSERT_EQ(f.viprip.rejectionsByCode().count("app_has_no_vips"), 1u);
  EXPECT_EQ(f.viprip.rejectionsByCode().at("app_has_no_vips"), 1u);
}

TEST(VipRipManager, RejectionsBrokenDownByErrorCode) {
  Fixture f;
  const AppId app = f.makeApp();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(f.viprip.createVipNow(app).ok());
  }
  auto submitOp = [&](VipRipOp op) {
    VipRipRequest req;
    req.op = op;
    req.app = app;
    req.vm = VmId{0};
    f.viprip.submit(std::move(req));
  };
  submitOp(VipRipOp::NewVip);     // vip_table_full (all 12 slots taken)
  submitOp(VipRipOp::NewVip);     // vip_table_full again
  submitOp(VipRipOp::SetWeight);  // vm_has_no_rips
  f.sim.runUntil(10.0);
  const auto& byCode = f.viprip.rejectionsByCode();
  ASSERT_EQ(byCode.count("vip_table_full"), 1u);
  EXPECT_EQ(byCode.at("vip_table_full"), 2u);
  EXPECT_EQ(byCode.count("vm_has_no_rips"), 1u);
  EXPECT_EQ(f.viprip.rejectedRequests(), 3u);
}

TEST(VipRipManager, RestoreVipRehostsOrphanWithOriginalRips) {
  Fixture f;
  const AppId app = f.makeApp();
  const auto vip = f.viprip.createVipNow(app);
  ASSERT_TRUE(vip.ok());
  ASSERT_TRUE(f.viprip.createRipNow(app, VmId{0}, 2.0).ok());
  ASSERT_TRUE(f.viprip.createRipNow(app, VmId{1}, 3.0).ok());

  const SwitchId owner = *f.fleet.ownerOf(vip.value());
  ASSERT_EQ(f.fleet.crashSwitch(owner, f.sim.now()), 1u);
  auto orphans = f.fleet.takeOrphans(owner);
  ASSERT_EQ(orphans.size(), 1u);

  VipRipRequest req;
  req.op = VipRipOp::RestoreVip;
  req.app = orphans[0].app;
  req.vip = orphans[0].vip;
  req.rips = orphans[0].rips;
  Status result = Status::fail("pending");
  req.done = [&](Status s) { result = s; };
  f.viprip.submit(std::move(req));
  f.sim.runUntil(10.0);

  EXPECT_TRUE(result.ok());
  const auto newOwner = f.fleet.ownerOf(vip.value());
  ASSERT_TRUE(newOwner.has_value());
  EXPECT_NE(*newOwner, owner);  // the crashed switch is still down
  const VipEntry* e = f.fleet.findVip(vip.value());
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->rips.size(), 2u);  // original RIP ids and weights survive
  EXPECT_DOUBLE_EQ(e->findRip(f.viprip.ripsOf(VmId{1})[0].rip)->weight, 3.0);

  // The VM bookkeeping still routes weight updates to the new home.
  VipRipRequest w;
  w.op = VipRipOp::SetWeight;
  w.vm = VmId{0};
  w.weight = 7.0;
  f.viprip.submit(std::move(w));
  f.sim.runUntil(20.0);
  const auto refs = f.viprip.ripsOf(VmId{0});
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_DOUBLE_EQ(f.fleet.findVip(refs[0].vip)->findRip(refs[0].rip)->weight,
                   7.0);
}

TEST(VipRipManager, RipGoesToSwitchHostingAppVip) {
  Fixture f;
  const AppId app = f.makeApp();
  const auto vip = f.viprip.createVipNow(app);
  ASSERT_TRUE(vip.ok());
  ASSERT_TRUE(f.viprip.createRipNow(app, VmId{0}, 2.0).ok());
  const auto owner = f.fleet.ownerOf(vip.value());
  EXPECT_EQ(f.fleet.at(*owner).ripCount(), 1u);
  const auto refs = f.viprip.ripsOf(VmId{0});
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].vip, vip.value());
}

TEST(VipRipManager, RipFailsWithoutVips) {
  Fixture f;
  const AppId app = f.makeApp();
  const Status s = f.viprip.createRipNow(app, VmId{0}, 1.0);
  EXPECT_EQ(s.error().code, "app_has_no_vips");
}

TEST(VipRipManager, QueueProcessesSeriallyWithLatency) {
  Fixture f;
  const AppId app = f.makeApp();
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&](Status s) {
      EXPECT_TRUE(s.ok());
      ++done;
    };
    f.viprip.submit(std::move(req));
  }
  // Decisions serialize at 0.1 s each (0.1, 0.2, 0.3); the 1.0 s switch
  // reconfigurations run in parallel, completing at 1.1, 1.2, 1.3.
  f.sim.runUntil(1.0);
  EXPECT_EQ(done, 0);
  f.sim.runUntil(1.15);
  EXPECT_EQ(done, 1);
  f.sim.runUntil(1.25);
  EXPECT_EQ(done, 2);
  f.sim.runUntil(3.5);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(f.viprip.processedRequests(), 3u);
  EXPECT_EQ(f.viprip.queueLength(), 0u);
}

TEST(VipRipManager, PriorityJumpsTheQueue) {
  Fixture f;
  const AppId app = f.makeApp();
  std::vector<int> order;
  auto mk = [&](int priority, int tag) {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.priority = priority;
    req.done = [&order, tag](Status) { order.push_back(tag); };
    return req;
  };
  // All three arrive before the manager's first pump, so strict priority
  // order applies across the whole batch.
  f.viprip.submit(mk(0, 1));
  f.viprip.submit(mk(0, 2));
  f.viprip.submit(mk(5, 3));
  f.sim.runUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

TEST(VipRipManager, EqualPriorityFifoSurvivesCrashRecover) {
  Fixture f;
  const AppId app = f.makeApp();
  std::vector<int> order;
  std::vector<std::string> codes;
  auto mk = [&](int tag) {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&, tag](Status s) {
      order.push_back(tag);
      codes.push_back(s.ok() ? "ok" : s.error().code);
    };
    return req;
  };
  f.viprip.submit(mk(1));
  f.viprip.submit(mk(2));
  f.viprip.submit(mk(3));
  f.sim.runUntil(1.15);  // 1 landed at 1.1; 2 and 3 are mid-flight
  ASSERT_EQ(order, (std::vector<int>{1}));

  f.viprip.crash();
  f.sim.runUntil(2.0);
  // The doomed requests settle as cancelled in their submission order.
  ASSERT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(codes[1], "cancelled");
  EXPECT_EQ(codes[2], "cancelled");

  // After recovery, equal-priority work is again strictly FIFO — the
  // admission queue's (priority, seq) order carries across the restart.
  f.viprip.recoverAsLeader(2);
  f.viprip.submit(mk(4));
  f.viprip.submit(mk(5));
  f.viprip.submit(mk(6));
  f.sim.runUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(codes[3], "ok");
  EXPECT_EQ(codes[4], "ok");
  EXPECT_EQ(codes[5], "ok");
}

TEST(VipRipManager, SetWeightAndDeleteRip) {
  Fixture f;
  const AppId app = f.makeApp();
  ASSERT_TRUE(f.viprip.createVipNow(app).ok());
  ASSERT_TRUE(f.viprip.createRipNow(app, VmId{3}, 1.0).ok());

  VipRipRequest w;
  w.op = VipRipOp::SetWeight;
  w.vm = VmId{3};
  w.weight = 9.0;
  f.viprip.submit(std::move(w));
  f.sim.runUntil(5.0);
  const auto refs = f.viprip.ripsOf(VmId{3});
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_DOUBLE_EQ(
      f.fleet.findVip(refs[0].vip)->findRip(refs[0].rip)->weight, 9.0);

  VipRipRequest d;
  d.op = VipRipOp::DeleteRip;
  d.vm = VmId{3};
  f.viprip.submit(std::move(d));
  f.sim.runUntil(10.0);
  EXPECT_TRUE(f.viprip.ripsOf(VmId{3}).empty());
  EXPECT_EQ(f.fleet.totalRips(), 0u);
}

TEST(VipRipManager, DeleteVipCleansEverything) {
  Fixture f;
  const AppId app = f.makeApp();
  const auto vip = f.viprip.createVipNow(app);
  ASSERT_TRUE(vip.ok());
  ASSERT_TRUE(f.viprip.createRipNow(app, VmId{0}, 1.0).ok());

  VipRipRequest req;
  req.op = VipRipOp::DeleteVip;
  req.vip = vip.value();
  f.viprip.submit(std::move(req));
  f.sim.runUntil(5.0);
  EXPECT_FALSE(f.fleet.ownerOf(vip.value()).has_value());
  EXPECT_TRUE(f.apps.app(app).vips.empty());
  EXPECT_TRUE(f.dns.vips(app).empty());
  EXPECT_TRUE(f.viprip.ripsOf(VmId{0}).empty());
}

TEST(VipRipManager, MoveVipRouteUpdatesDirectoryAndDrains) {
  Fixture f;
  const AppId app = f.makeApp();
  const auto vip = f.viprip.createVipNow(app);
  ASSERT_TRUE(vip.ok());
  const AccessRouterId from = f.viprip.routerOf(vip.value());
  const AccessRouterId to{from.value() == 0 ? 1u : 0u};
  f.sim.runUntil(3.0);  // let the first advertisement converge
  f.routes.settle(f.sim.now());
  ASSERT_TRUE(f.routes.isActive(vip.value(), from));

  f.viprip.moveVipRoute(vip.value(), to);
  EXPECT_EQ(f.viprip.routerOf(vip.value()), to);
  // Old route drains (padded, reachable) then is withdrawn.
  f.routes.settle(f.sim.now());
  EXPECT_FALSE(f.routes.isActive(vip.value(), from));
  EXPECT_TRUE(f.routes.isReachable(vip.value(), from));
  f.sim.runUntil(f.sim.now() + 120.0);
  f.routes.settle(f.sim.now());
  EXPECT_FALSE(f.routes.isReachable(vip.value(), from));
  EXPECT_TRUE(f.routes.isActive(vip.value(), to));
}

TEST(VipRipManager, RequestLatencyHistogramFills) {
  Fixture f;
  const AppId app = f.makeApp();
  VipRipRequest req;
  req.op = VipRipOp::NewVip;
  req.app = app;
  f.viprip.submit(std::move(req));
  f.sim.runUntil(5.0);
  EXPECT_EQ(f.viprip.requestLatency().count(), 1u);
  EXPECT_NEAR(f.viprip.requestLatency().meanValue(), 1.1, 0.2);
}

}  // namespace
}  // namespace mdc
