// Unit tests for the three balancers: access-link, switch, and inter-pod.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mdc/core/interpod_balancer.hpp"
#include "mdc/core/link_balancer.hpp"
#include "mdc/core/switch_balancer.hpp"

namespace mdc {
namespace {

// ------------------------------------------------------- fixtures -----

struct Fixture {
  Simulation sim;
  Topology topo;
  SwitchFleet fleet;
  AuthoritativeDns dns;
  RouteRegistry routes{1.0};
  AppRegistry apps;
  HostFleet hosts;
  PodRegistry registry;
  std::unique_ptr<VipRipManager> viprip;

  static TopologyConfig topoConfig() {
    TopologyConfig cfg;
    cfg.numServers = 8;
    cfg.numIsps = 2;
    cfg.numSwitches = 3;
    cfg.switchTrunkGbps = 1.0;
    return cfg;
  }

  Fixture()
      : topo(topoConfig()),
        hosts(topo, sim, HostCostModel{}),
        registry(topoConfig().numServers) {
    for (int i = 0; i < 3; ++i) fleet.addSwitch(SwitchLimits{});
    VipRipManager::Options o;
    o.processSeconds = 0.01;
    o.reconfigSeconds = 0.1;
    viprip = std::make_unique<VipRipManager>(sim, fleet, dns, routes, apps,
                                             topo, o);
  }

  AppId makeAppWithVips(int vips, double weight = 1.0) {
    const AppId app = apps.create("a", AppSla{}, 1000.0);
    for (int v = 0; v < vips; ++v) {
      const auto vip = viprip->createVipNow(app);
      EXPECT_TRUE(vip.ok());
      // Back each VIP so it is exposed.
      EXPECT_TRUE(
          viprip->createRipNow(app, VmId{static_cast<std::uint32_t>(v)},
                               weight)
              .ok());
    }
    return app;
  }

  EpochReport report() {
    EpochReport r;
    r.time = sim.now();
    r.accessLinkUtil.assign(topo.accessLinkCount(), 0.1);
    r.switchUtil.assign(topo.switchCount(), 0.1);
    return r;
  }
};

// --------------------------------------------------- link balancer ----

TEST(AccessLinkBalancerTest, ShiftsExposureTowardSpareLink) {
  Fixture f;
  const AppId app = f.makeAppWithVips(2);
  AccessLinkBalancer::Options opt;
  AccessLinkBalancer lb{f.sim, f.dns, *f.viprip, f.apps, f.fleet, f.topo,
                        opt};

  EpochReport r = f.report();
  const auto& vips = f.apps.app(app).vips;
  const auto ar0 = f.viprip->routerOf(vips[0]);
  r.accessLinkUtil[ar0.index()] = 0.95;  // vip0's link is hot
  lb.observe(r);
  lb.runOnce();
  EXPECT_GT(lb.weightUpdates(), 0u);
  EXPECT_LT(f.viprip->vipExposureFactor(vips[0]),
            f.viprip->vipExposureFactor(vips[1]));
  // And the DNS weights reflect the factors.
  double w0 = 0, w1 = 0;
  for (const VipWeight& vw : f.dns.vips(app)) {
    if (vw.vip == vips[0]) w0 = vw.weight;
    if (vw.vip == vips[1]) w1 = vw.weight;
  }
  EXPECT_LT(w0, w1);
}

TEST(AccessLinkBalancerTest, SingleVipAppsUntouched) {
  Fixture f;
  const AppId app = f.makeAppWithVips(1);
  AccessLinkBalancer lb{f.sim, f.dns, *f.viprip, f.apps, f.fleet, f.topo,
                        AccessLinkBalancer::Options{}};
  EpochReport r = f.report();
  r.accessLinkUtil[0] = 2.0;
  lb.observe(r);
  lb.runOnce();
  EXPECT_EQ(lb.weightUpdates(), 0u);
  (void)app;
}

TEST(AccessLinkBalancerTest, DoesNotReexposeDrainingVip) {
  Fixture f;
  const AppId app = f.makeAppWithVips(2);
  const VipId draining = f.apps.app(app).vips[0];
  f.viprip->setVipExposureFactor(draining, 0.0);
  AccessLinkBalancer lb{f.sim, f.dns, *f.viprip, f.apps, f.fleet, f.topo,
                        AccessLinkBalancer::Options{}};
  EpochReport r = f.report();
  lb.observe(r);
  lb.runOnce();
  EXPECT_EQ(f.viprip->vipExposureFactor(draining), 0.0);
}

TEST(AccessLinkBalancerTest, NoReportNoAction) {
  Fixture f;
  f.makeAppWithVips(2);
  AccessLinkBalancer lb{f.sim, f.dns, *f.viprip, f.apps, f.fleet, f.topo,
                        AccessLinkBalancer::Options{}};
  lb.runOnce();
  EXPECT_EQ(lb.weightUpdates(), 0u);
}

// ------------------------------------------------- switch balancer ----

TEST(SwitchBalancerTest, DrainsHotSwitchAndTransfers) {
  Fixture f;
  const AppId app = f.makeAppWithVips(2);
  SwitchBalancer::Options opt;
  opt.highWatermark = 0.8;
  opt.quiesceFraction = 0.5;
  SwitchBalancer sb{f.sim, f.fleet, f.dns, f.apps, *f.viprip, opt};

  const VipId hotVip = f.apps.app(app).vips[0];
  const SwitchId hotSw = *f.fleet.ownerOf(hotVip);

  EpochReport r = f.report();
  r.switchUtil[hotSw.index()] = 1.2;
  r.vipDemandGbps[hotVip] = 1.1;
  sb.observe(r);
  sb.runOnce();
  EXPECT_EQ(sb.drainsInProgress(), 1u);
  // Draining VIP unexposed.
  EXPECT_EQ(f.viprip->vipExposureFactor(hotVip), 0.0);

  // Demand subsides below the quiesce fraction -> transfer completes.
  EpochReport r2 = f.report();
  r2.vipDemandGbps[hotVip] = 0.2;
  sb.observe(r2);
  sb.runOnce();
  EXPECT_EQ(sb.transfersCompleted(), 1u);
  EXPECT_EQ(sb.drainsInProgress(), 0u);
  EXPECT_NE(*f.fleet.ownerOf(hotVip), hotSw);
  // Re-exposed after the move.
  EXPECT_GT(f.viprip->vipExposureFactor(hotVip), 0.0);
}

TEST(SwitchBalancerTest, NoDrainBelowWatermark) {
  Fixture f;
  f.makeAppWithVips(2);
  SwitchBalancer sb{f.sim, f.fleet, f.dns, f.apps, *f.viprip,
                    SwitchBalancer::Options{}};
  EpochReport r = f.report();
  sb.observe(r);
  sb.runOnce();
  EXPECT_EQ(sb.drainsInProgress(), 0u);
}

TEST(SwitchBalancerTest, TimeoutAbandonsWithoutForce) {
  Fixture f;
  const AppId app = f.makeAppWithVips(2);
  SwitchBalancer::Options opt;
  opt.highWatermark = 0.8;
  opt.drainTimeout = 50.0;
  opt.forceOnTimeout = false;
  SwitchBalancer sb{f.sim, f.fleet, f.dns, f.apps, *f.viprip, opt};

  const VipId hotVip = f.apps.app(app).vips[0];
  const SwitchId hotSw = *f.fleet.ownerOf(hotVip);
  EpochReport r = f.report();
  r.switchUtil[hotSw.index()] = 1.5;
  r.vipDemandGbps[hotVip] = 1.2;
  sb.observe(r);
  sb.runOnce();
  ASSERT_EQ(sb.drainsInProgress(), 1u);

  // Demand never subsides; time passes beyond the timeout.
  f.sim.runUntil(60.0);
  EpochReport r2 = f.report();
  r2.time = f.sim.now();
  r2.vipDemandGbps[hotVip] = 1.2;
  sb.observe(r2);
  sb.runOnce();
  EXPECT_EQ(sb.transfersAbandoned(), 1u);
  EXPECT_EQ(*f.fleet.ownerOf(hotVip), hotSw);        // unmoved
  EXPECT_GT(f.viprip->vipExposureFactor(hotVip), 0.0);  // re-exposed
}

// ----------------------------------------------- inter-pod balancer ---

struct PodFixture : Fixture {
  std::vector<std::unique_ptr<PodManager>> pods;
  std::unique_ptr<InterPodBalancer> balancer;

  class NullSink final : public RipRequestSink {
   public:
    void requestNewRip(AppId, VmId, double) override {}
    void requestRipRemoval(VmId, std::function<void()> onDone) override {
      if (onDone) onDone();
    }
    void requestRipWeight(VmId, double) override {}
  };
  NullSink sink;

  PodManager& makePod(std::vector<ServerId> servers) {
    const PodId id{static_cast<PodId::value_type>(pods.size())};
    pods.push_back(std::make_unique<PodManager>(
        id, sim, hosts, apps, topo, registry,
        std::make_shared<PlacementController>(), sink,
        PodManager::Options{}));
    for (ServerId s : servers) pods.back()->adoptServer(s);
    return *pods.back();
  }

  void makeBalancer(InterPodBalancer::Options opt) {
    std::vector<PodManager*> raw;
    for (auto& p : pods) raw.push_back(p.get());
    balancer = std::make_unique<InterPodBalancer>(
        sim, hosts, apps, fleet, *viprip, registry, std::move(raw), opt);
  }
};

TEST(InterPodBalancerTest, ElephantShedsToSmallestPod) {
  PodFixture f;
  PodManager& big = f.makePod({ServerId{0}, ServerId{1}, ServerId{2},
                               ServerId{3}, ServerId{4}, ServerId{5}});
  PodManager& small = f.makePod({ServerId{6}, ServerId{7}});
  const AppId app = f.apps.create("x", AppSla{}, 100.0);
  // Give the big pod lots of VMs and refresh its stats via demand.
  for (std::uint32_t s = 0; s < 6; ++s) {
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          f.hosts.createVm(app, ServerId{s}, CapacityVec{1.0, 2.0, 0.05})
              .ok());
    }
  }
  big.setAppDemand(app, 100.0);
  big.runControlLoop();
  small.setAppDemand(app, 0.0);
  small.runControlLoop();

  InterPodBalancer::Options opt;
  opt.maxVmsPerPod = 4;  // big pod (12 VMs) is an elephant
  opt.elephantSheddingBatch = 2;
  opt.enableRipWeight = opt.enableAppDeploy = opt.enableServerTransfer =
      false;
  f.makeBalancer(opt);
  f.balancer->observe(EpochReport{});
  f.balancer->runOnce();

  EXPECT_EQ(f.balancer->elephantSheds(), 2u);
  EXPECT_EQ(big.servers().size(), 4u);
  EXPECT_EQ(small.servers().size(), 4u);
  // Shed servers moved with their VMs (no migration happened).
  EXPECT_EQ(f.hosts.migrationsStarted(), 0u);
}

TEST(InterPodBalancerTest, ServerTransferFromColdDonor) {
  PodFixture f;
  PodManager& hot = f.makePod({ServerId{0}, ServerId{1}});
  PodManager& cold = f.makePod({ServerId{2}, ServerId{3}, ServerId{4},
                                ServerId{5}});
  const AppId app = f.apps.create("x", AppSla{}, 100.0);
  // Saturate the hot pod.
  for (std::uint32_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(
        f.hosts.createVm(app, ServerId{s}, CapacityVec{7.5, 28.0, 0.9})
            .ok());
  }
  f.sim.runUntil(70.0);  // VMs active
  hot.setAppDemand(app, 14'000.0);
  hot.runControlLoop();
  cold.setAppDemand(app, 0.0);
  // cold pod: no demand signal needed; stats default to idle.

  InterPodBalancer::Options opt;
  opt.overloadUtilization = 0.8;
  opt.underloadUtilization = 0.5;
  opt.serversPerTransfer = 2;
  opt.enableRipWeight = opt.enableAppDeploy = false;
  opt.enableElephantAvoidance = false;
  f.makeBalancer(opt);
  f.balancer->observe(EpochReport{});
  f.balancer->runOnce();
  f.sim.runUntil(f.sim.now() + 30.0);

  EXPECT_EQ(f.balancer->serverTransfers(), 2u);
  EXPECT_EQ(hot.servers().size(), 4u);
  EXPECT_EQ(cold.servers().size(), 2u);
}

TEST(InterPodBalancerTest, DeploymentTargetsUnservedApp) {
  PodFixture f;
  PodManager& hot = f.makePod({ServerId{0}});
  PodManager& cold = f.makePod({ServerId{1}, ServerId{2}});
  const AppId app = f.makeAppWithVips(1);
  // One saturated instance in the hot pod.
  const auto vm =
      f.hosts.createVm(app, ServerId{0}, CapacityVec{7.0, 28.0, 0.9});
  ASSERT_TRUE(vm.ok());
  f.apps.addInstance(app, vm.value());
  f.sim.runUntil(70.0);
  hot.setAppDemand(app, 14'000.0);
  hot.runControlLoop();
  (void)cold;

  InterPodBalancer::Options opt;
  opt.overloadUtilization = 0.8;
  opt.underloadUtilization = 0.6;
  opt.enableRipWeight = opt.enableServerTransfer = false;
  opt.enableElephantAvoidance = false;
  f.makeBalancer(opt);

  EpochReport r;
  r.appDemandRps[app] = 14'000.0;
  r.appServedRps[app] = 7'000.0;
  f.balancer->observe(r);
  f.balancer->runOnce();
  EXPECT_EQ(f.balancer->deployActions(), 1u);
  // The clone landed in the cold pod.
  bool found = false;
  for (ServerId s : {ServerId{1}, ServerId{2}}) {
    if (!f.hosts.vmsOn(s).empty()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(InterPodBalancerTest, DeployCooldownLimitsChurn) {
  PodFixture f;
  PodManager& hot = f.makePod({ServerId{0}});
  f.makePod({ServerId{1}, ServerId{2}});
  const AppId app = f.makeAppWithVips(1);
  const auto vm =
      f.hosts.createVm(app, ServerId{0}, CapacityVec{7.0, 28.0, 0.9});
  ASSERT_TRUE(vm.ok());
  f.apps.addInstance(app, vm.value());
  f.sim.runUntil(70.0);
  hot.setAppDemand(app, 14'000.0);
  hot.runControlLoop();

  InterPodBalancer::Options opt;
  opt.overloadUtilization = 0.8;
  opt.underloadUtilization = 0.6;
  opt.deployCooldown = 300.0;
  opt.enableRipWeight = opt.enableServerTransfer = false;
  opt.enableElephantAvoidance = false;
  f.makeBalancer(opt);

  EpochReport r;
  r.appDemandRps[app] = 14'000.0;
  r.appServedRps[app] = 7'000.0;
  f.balancer->observe(r);
  f.balancer->runOnce();
  f.balancer->runOnce();  // immediately again: cooldown must block
  EXPECT_EQ(f.balancer->deployActions(), 1u);
}

}  // namespace
}  // namespace mdc
