// Unit tests for the physical topology.
#include <gtest/gtest.h>

#include "mdc/topo/topology.hpp"

namespace mdc {
namespace {

TopologyConfig smallConfig() {
  TopologyConfig cfg;
  cfg.numServers = 20;
  cfg.numIsps = 2;
  cfg.accessLinksPerIsp = 2;
  cfg.accessLinkGbps = 10.0;
  cfg.numSwitches = 3;
  cfg.switchTrunkGbps = 4.0;
  return cfg;
}

TEST(Topology, BuildsConfiguredCounts) {
  Topology topo{smallConfig()};
  EXPECT_EQ(topo.serverCount(), 20u);
  EXPECT_EQ(topo.accessLinkCount(), 4u);
  EXPECT_EQ(topo.switchCount(), 3u);
  // Links: 4 access + 3 trunks + 20 NICs.
  EXPECT_EQ(topo.network().linkCount(), 27u);
}

TEST(Topology, AccessLinksStripeOverIsps) {
  Topology topo{smallConfig()};
  EXPECT_EQ(topo.accessLink(0).isp, IspId{0});
  EXPECT_EQ(topo.accessLink(1).isp, IspId{1});
  EXPECT_EQ(topo.accessLink(2).isp, IspId{0});
  EXPECT_EQ(topo.accessLink(3).isp, IspId{1});
}

TEST(Topology, AccessLinkForRouter) {
  Topology topo{smallConfig()};
  const auto& al = topo.accessLinkFor(AccessRouterId{2});
  EXPECT_EQ(al.router, AccessRouterId{2});
  EXPECT_THROW((void)topo.accessLinkFor(AccessRouterId{99}),
               PreconditionError);
}

TEST(Topology, ServerProperties) {
  Topology topo{smallConfig()};
  const ServerInfo& s = topo.server(ServerId{5});
  EXPECT_EQ(s.id, ServerId{5});
  EXPECT_DOUBLE_EQ(s.capacity.cpu(), 8.0);
  EXPECT_DOUBLE_EQ(topo.network().link(s.nic).capacityGbps, 1.0);
  EXPECT_THROW((void)topo.server(ServerId{999}), PreconditionError);
}

TEST(Topology, ModernExternalPathHasNoSiloHop) {
  Topology topo{smallConfig()};
  const auto path = topo.externalPath(0, SwitchId{1}, ServerId{3});
  ASSERT_EQ(path.size(), 3u);  // access link, trunk, NIC
  EXPECT_EQ(path[0], topo.accessLink(0).link);
  EXPECT_EQ(path[1], topo.switchTrunk(SwitchId{1}));
  EXPECT_EQ(path[2], topo.server(ServerId{3}).nic);
}

TEST(Topology, ModernInternalPathOnlyNics) {
  Topology topo{smallConfig()};
  const auto path = topo.internalPath(ServerId{0}, ServerId{7});
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], topo.server(ServerId{0}).nic);
  EXPECT_EQ(path[1], topo.server(ServerId{7}).nic);
}

TEST(Topology, TraditionalFabricAddsSiloUplinks) {
  TopologyConfig cfg = smallConfig();
  cfg.fabric = FabricKind::TraditionalTree;
  cfg.siloCount = 4;
  Topology topo{cfg};
  // Servers striped over silos.
  EXPECT_EQ(topo.server(ServerId{0}).silo, 0u);
  EXPECT_EQ(topo.server(ServerId{1}).silo, 1u);
  EXPECT_EQ(topo.server(ServerId{5}).silo, 1u);

  const auto ext = topo.externalPath(0, SwitchId{0}, ServerId{1});
  ASSERT_EQ(ext.size(), 4u);  // access, trunk, silo uplink, NIC
  EXPECT_EQ(ext[2], topo.siloUplink(1));

  // Cross-silo internal path pays both uplinks.
  const auto cross = topo.internalPath(ServerId{0}, ServerId{1});
  EXPECT_EQ(cross.size(), 4u);
  // Same-silo internal path does not.
  const auto same = topo.internalPath(ServerId{0}, ServerId{4});
  EXPECT_EQ(same.size(), 2u);
}

TEST(Topology, SiloUplinkUnavailableOnModernFabric) {
  Topology topo{smallConfig()};
  EXPECT_THROW((void)topo.siloUplink(0), PreconditionError);
}

TEST(Topology, ConfigValidation) {
  TopologyConfig cfg = smallConfig();
  cfg.numServers = 0;
  EXPECT_THROW((Topology{cfg}), PreconditionError);

  cfg = smallConfig();
  cfg.numSwitches = 0;
  EXPECT_THROW((Topology{cfg}), PreconditionError);

  cfg = smallConfig();
  cfg.fabric = FabricKind::TraditionalTree;
  cfg.siloCount = 0;
  EXPECT_THROW((Topology{cfg}), PreconditionError);
}

}  // namespace
}  // namespace mdc
