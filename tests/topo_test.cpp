// Unit tests for the physical topology.
#include <gtest/gtest.h>

#include "mdc/topo/topology.hpp"

namespace mdc {
namespace {

TopologyConfig smallConfig() {
  TopologyConfig cfg;
  cfg.numServers = 20;
  cfg.numIsps = 2;
  cfg.accessLinksPerIsp = 2;
  cfg.accessLinkGbps = 10.0;
  cfg.numSwitches = 3;
  cfg.switchTrunkGbps = 4.0;
  return cfg;
}

TEST(Topology, BuildsConfiguredCounts) {
  Topology topo{smallConfig()};
  EXPECT_EQ(topo.serverCount(), 20u);
  EXPECT_EQ(topo.accessLinkCount(), 4u);
  EXPECT_EQ(topo.switchCount(), 3u);
  // Links: 4 access + 3 trunks + 20 NICs.
  EXPECT_EQ(topo.network().linkCount(), 27u);
}

TEST(Topology, AccessLinksStripeOverIsps) {
  Topology topo{smallConfig()};
  EXPECT_EQ(topo.accessLink(0).isp, IspId{0});
  EXPECT_EQ(topo.accessLink(1).isp, IspId{1});
  EXPECT_EQ(topo.accessLink(2).isp, IspId{0});
  EXPECT_EQ(topo.accessLink(3).isp, IspId{1});
}

TEST(Topology, AccessLinkForRouter) {
  Topology topo{smallConfig()};
  const auto& al = topo.accessLinkFor(AccessRouterId{2});
  EXPECT_EQ(al.router, AccessRouterId{2});
  EXPECT_THROW((void)topo.accessLinkFor(AccessRouterId{99}),
               PreconditionError);
}

TEST(Topology, ServerProperties) {
  Topology topo{smallConfig()};
  const ServerInfo& s = topo.server(ServerId{5});
  EXPECT_EQ(s.id, ServerId{5});
  EXPECT_DOUBLE_EQ(s.capacity.cpu(), 8.0);
  EXPECT_DOUBLE_EQ(topo.network().link(s.nic).capacityGbps, 1.0);
  EXPECT_THROW((void)topo.server(ServerId{999}), PreconditionError);
}

TEST(Topology, ModernExternalPathHasNoSiloHop) {
  Topology topo{smallConfig()};
  const auto path = topo.externalPath(0, SwitchId{1}, ServerId{3});
  ASSERT_EQ(path.size(), 3u);  // access link, trunk, NIC
  EXPECT_EQ(path[0], topo.accessLink(0).link);
  EXPECT_EQ(path[1], topo.switchTrunk(SwitchId{1}));
  EXPECT_EQ(path[2], topo.server(ServerId{3}).nic);
}

TEST(Topology, ModernInternalPathOnlyNics) {
  Topology topo{smallConfig()};
  const auto path = topo.internalPath(ServerId{0}, ServerId{7});
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], topo.server(ServerId{0}).nic);
  EXPECT_EQ(path[1], topo.server(ServerId{7}).nic);
}

TEST(Topology, TraditionalFabricAddsSiloUplinks) {
  TopologyConfig cfg = smallConfig();
  cfg.fabric = FabricKind::TraditionalTree;
  cfg.siloCount = 4;
  Topology topo{cfg};
  // Servers striped over silos.
  EXPECT_EQ(topo.server(ServerId{0}).silo, 0u);
  EXPECT_EQ(topo.server(ServerId{1}).silo, 1u);
  EXPECT_EQ(topo.server(ServerId{5}).silo, 1u);

  const auto ext = topo.externalPath(0, SwitchId{0}, ServerId{1});
  ASSERT_EQ(ext.size(), 4u);  // access, trunk, silo uplink, NIC
  EXPECT_EQ(ext[2], topo.siloUplink(1));

  // Cross-silo internal path pays both uplinks.
  const auto cross = topo.internalPath(ServerId{0}, ServerId{1});
  EXPECT_EQ(cross.size(), 4u);
  // Same-silo internal path does not.
  const auto same = topo.internalPath(ServerId{0}, ServerId{4});
  EXPECT_EQ(same.size(), 2u);
}

TEST(Topology, LinkCutStarvesOnlyFlowsThroughIt) {
  // Cut a trunk that carries live traffic: its flow drops to zero while
  // flows on other switches keep their full allocation, and restoring
  // the capacity heals the path.
  Topology topo{smallConfig()};
  const std::vector<Flow> flows{
      {0.8, topo.externalPath(0, SwitchId{0}, ServerId{0})},
      {0.8, topo.externalPath(1, SwitchId{1}, ServerId{1})},
  };
  const FlowAllocation before = topo.network().allocate(flows);
  EXPECT_DOUBLE_EQ(before.flowRate[0], 0.8);
  EXPECT_DOUBLE_EQ(before.flowRate[1], 0.8);

  const LinkId trunk0 = topo.switchTrunk(SwitchId{0});
  topo.network().setCapacity(trunk0, 0.0);  // link down
  const FlowAllocation cut = topo.network().allocate(flows);
  EXPECT_DOUBLE_EQ(cut.flowRate[0], 0.0);
  EXPECT_DOUBLE_EQ(cut.flowRate[1], 0.8);
  // Offered load still counts the demand aimed at the dead link; served
  // load through it is zero.
  EXPECT_DOUBLE_EQ(cut.linkOffered[trunk0.index()], 0.8);
  EXPECT_DOUBLE_EQ(cut.linkServed[trunk0.index()], 0.0);

  topo.network().setCapacity(trunk0, smallConfig().switchTrunkGbps);
  const FlowAllocation healed = topo.network().allocate(flows);
  EXPECT_DOUBLE_EQ(healed.flowRate[0], 0.8);
}

TEST(Topology, TraditionalTreeContendsWhereVl2DoesNot) {
  // Four cross-silo server-to-server flows of 1 Gbps each.  On the
  // traditional tree they all squeeze through 2 Gbps silo uplinks and
  // max-min fairness gives each 0.5 Gbps; on the modern non-blocking
  // fabric only the NICs constrain them and all four are fully served.
  TopologyConfig cfg = smallConfig();
  cfg.fabric = FabricKind::TraditionalTree;
  cfg.siloCount = 4;
  cfg.siloUplinkGbps = 2.0;
  Topology trad{cfg};
  Topology modern{smallConfig()};

  std::vector<Flow> tradFlows;
  std::vector<Flow> vl2Flows;
  for (std::uint32_t i = 0; i < 4; ++i) {
    // Servers stripe over silos: 4i sits in silo 0, 4i+1 in silo 1.
    const ServerId from{i * 4};
    const ServerId to{i * 4 + 1};
    tradFlows.push_back({1.0, trad.internalPath(from, to)});
    vl2Flows.push_back({1.0, modern.internalPath(from, to)});
  }

  const FlowAllocation tradAlloc = trad.network().allocate(tradFlows);
  for (const double rate : tradAlloc.flowRate) EXPECT_DOUBLE_EQ(rate, 0.5);
  EXPECT_DOUBLE_EQ(tradAlloc.totalServed(), 2.0);
  // The source silo's uplink is the saturated bottleneck.
  EXPECT_DOUBLE_EQ(tradAlloc.linkServed[trad.siloUplink(0).index()], 2.0);

  const FlowAllocation vl2Alloc = modern.network().allocate(vl2Flows);
  for (const double rate : vl2Alloc.flowRate) EXPECT_DOUBLE_EQ(rate, 1.0);
  EXPECT_DOUBLE_EQ(vl2Alloc.totalServed(), 4.0);
}

TEST(Topology, FabricPathInvariants) {
  // Structural contrast the paper's §III argument rests on: the modern
  // fabric contributes no intermediate hops, the traditional tree always
  // inserts the destination silo's uplink.
  Topology modern{smallConfig()};
  TopologyConfig tcfg = smallConfig();
  tcfg.fabric = FabricKind::TraditionalTree;
  Topology trad{tcfg};

  for (std::uint32_t s = 0; s < 3; ++s) {
    for (std::uint32_t srv = 0; srv < 20; srv += 7) {
      const auto mExt = modern.externalPath(0, SwitchId{s}, ServerId{srv});
      ASSERT_EQ(mExt.size(), 3u);
      EXPECT_EQ(mExt.back(), modern.server(ServerId{srv}).nic);

      const auto tExt = trad.externalPath(0, SwitchId{s}, ServerId{srv});
      ASSERT_EQ(tExt.size(), 4u);
      const std::uint32_t silo = trad.server(ServerId{srv}).silo;
      EXPECT_EQ(tExt[2], trad.siloUplink(silo));
    }
  }
  // Internal paths: the modern fabric never exceeds two links; the
  // traditional tree only matches that within a silo.
  EXPECT_EQ(modern.internalPath(ServerId{0}, ServerId{1}).size(), 2u);
  EXPECT_EQ(trad.internalPath(ServerId{0}, ServerId{4}).size(), 2u);
  EXPECT_EQ(trad.internalPath(ServerId{0}, ServerId{1}).size(), 4u);
  // Trunk links carry the paper's 4 Gbps L4 capacity on both fabrics.
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(
        modern.network().link(modern.switchTrunk(SwitchId{s})).capacityGbps,
        4.0);
  }
}

TEST(Topology, SiloUplinkUnavailableOnModernFabric) {
  Topology topo{smallConfig()};
  EXPECT_THROW((void)topo.siloUplink(0), PreconditionError);
}

TEST(Topology, ConfigValidation) {
  TopologyConfig cfg = smallConfig();
  cfg.numServers = 0;
  EXPECT_THROW((Topology{cfg}), PreconditionError);

  cfg = smallConfig();
  cfg.numSwitches = 0;
  EXPECT_THROW((Topology{cfg}), PreconditionError);

  cfg = smallConfig();
  cfg.fabric = FabricKind::TraditionalTree;
  cfg.siloCount = 0;
  EXPECT_THROW((Topology{cfg}), PreconditionError);
}

}  // namespace
}  // namespace mdc
