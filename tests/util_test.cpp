// Unit tests for the util module: strong ids, contracts, units, results,
// statistics helpers, and the epoch engine's worker pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include "mdc/util/expect.hpp"
#include "mdc/util/ids.hpp"
#include "mdc/util/result.hpp"
#include "mdc/util/stats.hpp"
#include "mdc/util/thread_pool.hpp"
#include "mdc/util/units.hpp"

namespace mdc {
namespace {

TEST(StrongId, DefaultConstructedIsInvalid) {
  ServerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ServerId::invalid());
}

TEST(StrongId, ValueRoundTrips) {
  ServerId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(VmId{1}, VmId{2});
  EXPECT_EQ(VmId{7}, VmId{7});
  EXPECT_NE(VmId{7}, VmId{8});
}

TEST(StrongId, HashableInUnorderedSet) {
  std::unordered_set<AppId> set;
  set.insert(AppId{1});
  set.insert(AppId{2});
  set.insert(AppId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StreamOutput) {
  std::ostringstream os;
  os << PodId{5} << " " << PodId{};
  EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(IdAllocator, AllocatesDenselyFromZero) {
  IdAllocator<VipId> alloc;
  EXPECT_EQ(alloc.next(), VipId{0});
  EXPECT_EQ(alloc.next(), VipId{1});
  EXPECT_EQ(alloc.allocated(), 2u);
}

TEST(Expect, PreconditionThrows) {
  EXPECT_THROW(MDC_EXPECT(false, "boom"), PreconditionError);
  EXPECT_NO_THROW(MDC_EXPECT(true, "fine"));
}

TEST(Expect, InvariantThrowsWithMessage) {
  try {
    MDC_ENSURE(1 == 2, "numbers drifted");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("numbers drifted"),
              std::string::npos);
  }
}

TEST(CapacityVec, Arithmetic) {
  CapacityVec a{2.0, 4.0, 1.0};
  CapacityVec b{1.0, 1.0, 0.5};
  EXPECT_EQ((a + b).cpu(), 3.0);
  EXPECT_EQ((a - b).memory(), 3.0);
  EXPECT_EQ((a * 2.0).network(), 2.0);
  EXPECT_EQ((2.0 * a).cpu(), 4.0);
}

TEST(CapacityVec, FitsWithin) {
  CapacityVec small{1.0, 1.0, 1.0};
  CapacityVec big{2.0, 2.0, 2.0};
  EXPECT_TRUE(small.fitsWithin(big));
  EXPECT_FALSE(big.fitsWithin(small));
  EXPECT_TRUE(small.fitsWithin(small));
}

TEST(CapacityVec, NonNegative) {
  EXPECT_TRUE((CapacityVec{0.0, 0.0, 0.0}).nonNegative());
  EXPECT_FALSE((CapacityVec{1.0, -0.1, 0.0}).nonNegative());
}

TEST(CapacityVec, MaxRatioFindsBindingResource) {
  CapacityVec use{1.0, 8.0, 0.5};
  CapacityVec cap{4.0, 16.0, 1.0};
  EXPECT_DOUBLE_EQ(use.maxRatio(cap), 0.5);  // memory and net tie at 0.5
}

TEST(CapacityVec, MaxRatioInfiniteWhenDenomZero) {
  CapacityVec use{1.0, 0.0, 0.0};
  CapacityVec cap{0.0, 16.0, 1.0};
  EXPECT_TRUE(std::isinf(use.maxRatio(cap)));
}

TEST(CapacityVec, IndexByResourceEnum) {
  CapacityVec c{1.0, 2.0, 3.0};
  EXPECT_EQ(c[Resource::Cpu], 1.0);
  EXPECT_EQ(c[Resource::Memory], 2.0);
  EXPECT_EQ(c[Resource::Network], 3.0);
  c[Resource::Cpu] = 9.0;
  EXPECT_EQ(c.cpu(), 9.0);
}

TEST(Result, SuccessAndError) {
  Result<int> good{7};
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  Result<int> bad{Error{"full", "table exhausted"}};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "full");
  EXPECT_THROW((void)bad.value(), PreconditionError);
}

TEST(Status, OkAndFail) {
  EXPECT_TRUE(Status::okStatus().ok());
  const Status s = Status::fail("nope", "reason");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "nope");
  EXPECT_THROW((void)Status::okStatus().error(), PreconditionError);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(stddev(empty), 0.0);
  EXPECT_EQ(coefficientOfVariation(empty), 0.0);
  EXPECT_EQ(jainFairness(empty), 1.0);
  EXPECT_EQ(maxOverMean(empty), 1.0);
}

TEST(Stats, JainFairnessBounds) {
  std::vector<double> balanced{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(jainFairness(balanced), 1.0);
  std::vector<double> skewed{9.0, 0.0, 0.0};
  EXPECT_NEAR(jainFairness(skewed), 1.0 / 3.0, 1e-12);
}

TEST(Stats, MaxOverMean) {
  std::vector<double> xs{1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(maxOverMean(xs), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentilePreconditions) {
  std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), PreconditionError);
  std::vector<double> one{1.0};
  EXPECT_THROW((void)percentile(one, 101.0), PreconditionError);
}

TEST(Units, Helpers) {
  EXPECT_DOUBLE_EQ(gbps(4.0), 4.0);
  EXPECT_DOUBLE_EQ(mbps(500.0), 0.5);
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallelFor(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: no helper threads
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(17, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPool, PropagatesJobExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(100,
                                [&](std::size_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("job failed");
                                  }
                                }),
               std::runtime_error);
  // The pool must survive a failed round.
  std::atomic<int> ran{0};
  pool.parallelFor(8, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ResolveWorkersHonoursEnv) {
  // Oversubscription escape hatch makes the expectations machine-
  // independent; the clamp itself is tested below.
  ::setenv("MDC_ALLOW_OVERSUBSCRIBE", "1", 1);
  EXPECT_EQ(ThreadPool::resolveWorkers(3), 3u);
  ::setenv("MDC_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::resolveWorkers(0), 5u);
  ::unsetenv("MDC_THREADS");
  EXPECT_EQ(ThreadPool::resolveWorkers(0), 1u);
  ::unsetenv("MDC_ALLOW_OVERSUBSCRIBE");
}

TEST(ThreadPool, ResolveWorkersClampsToHardware) {
  ::unsetenv("MDC_ALLOW_OVERSUBSCRIBE");
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned cap = std::min(hw, ThreadPool::kMaxWorkers);
  // A request beyond the machine is clamped, never oversubscribed.
  EXPECT_EQ(ThreadPool::resolveWorkers(cap + 8), cap);
  ::setenv("MDC_THREADS", "64", 1);
  EXPECT_EQ(ThreadPool::resolveWorkers(0), cap);
  ::unsetenv("MDC_THREADS");
  // 1 worker is always granted as-is.
  EXPECT_EQ(ThreadPool::resolveWorkers(1), 1u);
}

TEST(ThreadPool, ResolveWorkersCapsAtMaxEvenWhenOversubscribed) {
  ::setenv("MDC_ALLOW_OVERSUBSCRIBE", "1", 1);
  EXPECT_EQ(ThreadPool::resolveWorkers(ThreadPool::kMaxWorkers + 4),
            ThreadPool::kMaxWorkers);
  ::unsetenv("MDC_ALLOW_OVERSUBSCRIBE");
}

}  // namespace
}  // namespace mdc
