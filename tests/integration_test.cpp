// End-to-end integration tests: the fully wired mega-DC scenario with the
// fluid engine, pod managers, global manager, and every balancer running.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mdc/scenario/megadc.hpp"

namespace mdc {
namespace {

TEST(MegaDcIntegration, BootstrapBringsUpAllApps) {
  MegaDc dc{testScaleConfig()};
  dc.deployAllApps();
  // Every app has VIPs in DNS, on switches, and advertised.
  for (const Application& a : dc.apps.all()) {
    EXPECT_EQ(a.vips.size(), dc.config().manager.vipsPerApp);
    for (VipId vip : a.vips) {
      EXPECT_TRUE(dc.fleet.ownerOf(vip).has_value());
    }
    // deployAllApps auto-sizes the instance count upward so each initial
    // slice fits within a server.
    EXPECT_GE(a.instances.size(), dc.config().instancesPerApp);
  }
  // Switch tables within limits.
  dc.fleet.forEach([](const LbSwitch& sw) {
    EXPECT_LE(sw.vipCount(), sw.limits().maxVips);
    EXPECT_LE(sw.ripCount(), sw.limits().maxRips);
  });
}

TEST(MegaDcIntegration, SteadyStateServesAllDemand) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 120.0);
  const EpochReport& r = dc.engine->latest();
  EXPECT_LT(r.unroutedRps, 1.0);
  const double demand = r.totalDemandRps();
  const double served = r.totalServedRps();
  EXPECT_GT(demand, 0.0);
  EXPECT_GT(served / demand, 0.95);
}

TEST(MegaDcIntegration, EpochReportStructuresAreComplete) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 30.0);
  const EpochReport& r = dc.engine->latest();
  EXPECT_EQ(r.accessLinkUtil.size(), dc.topo.accessLinkCount());
  EXPECT_EQ(r.switchUtil.size(), dc.topo.switchCount());
  EXPECT_EQ(r.appDemandRps.size(), dc.apps.size());
  EXPECT_FALSE(r.vipDemandGbps.empty());
  EXPECT_GT(r.externalOfferedGbps, 0.0);
}

TEST(MegaDcIntegration, FlashCrowdTriggersScaleOut) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};

  // Flash crowd on app 3 (an unpopular one): 8x demand for 5 minutes.
  const auto rates = zipfBaseRates(cfg.numApps, cfg.zipfAlpha,
                                   cfg.totalDemandRps);
  FlashCrowdDemand::Spike spike;
  spike.app = AppId{3};
  spike.start = 60.0;
  spike.end = 360.0;
  spike.multiplier = 8.0;
  spike.rampSeconds = 20.0;
  dc.setDemandModel(std::make_unique<FlashCrowdDemand>(
      std::make_unique<StaticDemand>(rates),
      std::vector<FlashCrowdDemand::Spike>{spike}));

  dc.bootstrap();
  const std::size_t instancesBefore = dc.apps.app(AppId{3}).instances.size();
  dc.runUntil(300.0);
  // The pod managers must have grown the app.
  EXPECT_GT(dc.apps.app(AppId{3}).instances.size(), instancesBefore);
  // And most of the spiked demand is served.
  const EpochReport& r = dc.engine->latest();
  const double demand = r.appDemandRps.at(AppId{3});
  const double served = r.appServedRps.at(AppId{3});
  EXPECT_GT(served / demand, 0.8);
}

TEST(MegaDcIntegration, DiurnalLoadStaysServed) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  const auto rates =
      zipfBaseRates(cfg.numApps, cfg.zipfAlpha, cfg.totalDemandRps);
  dc.setDemandModel(
      std::make_unique<DiurnalDemand>(rates, 0.5, 600.0, cfg.seed));
  dc.bootstrap();
  dc.runUntil(900.0);  // 1.5 synthetic days
  EXPECT_GT(dc.engine->satisfaction().timeWeightedMean(), 0.9);
}

TEST(MegaDcIntegration, ServerUtilizationNeverExceedsCapacity) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 60.0);
  for (const ServerInfo& s : dc.topo.servers()) {
    EXPECT_LE(dc.hosts.serverUtilization(s.id), 1.0 + 1e-9);
  }
}

TEST(MegaDcIntegration, PodStatsPopulatedByControlLoops) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 60.0);
  for (const auto& pod : dc.manager->pods()) {
    const PodStats& st = pod->stats();
    EXPECT_GT(st.servers, 0u);
    EXPECT_GE(st.meanUtilization, 0.0);
  }
}

TEST(MegaDcIntegration, DeterministicAcrossRuns) {
  auto run = [] {
    MegaDc dc{testScaleConfig()};
    dc.bootstrap();
    dc.runUntil(dc.sim.now() + 120.0);
    return std::tuple{dc.engine->latest().totalServedRps(),
                      dc.hosts.activeVmCount(),
                      dc.sim.eventsExecuted()};
  };
  EXPECT_EQ(run(), run());
}

TEST(MegaDcIntegration, LinkBalancerReducesImbalance) {
  // Give one app all the demand and the other link little, then check
  // selective exposure pulls the max/mean link imbalance down.
  MegaDcConfig cfg = testScaleConfig();
  cfg.numApps = 4;
  cfg.totalDemandRps = 40'000.0;
  cfg.zipfAlpha = 0.0;  // uniform demand
  cfg.manager.link.period = 6.0;
  MegaDc dc{cfg};
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 300.0);
  const double late = dc.engine->linkImbalance().last();
  EXPECT_LT(late, 1.5);  // two links, so max/mean <= 2; balanced ~1
}

TEST(MegaDcIntegration, VipRipQueueDrainsUnderChurn) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  const auto rates =
      zipfBaseRates(cfg.numApps, cfg.zipfAlpha, cfg.totalDemandRps);
  dc.setDemandModel(std::make_unique<RandomWalkDemand>(rates, 0.4, 30.0,
                                                       cfg.seed));
  dc.bootstrap();
  dc.runUntil(600.0);
  EXPECT_GT(dc.manager->viprip().processedRequests(), 0u);
  EXPECT_LT(dc.manager->viprip().queueLength(), 50u);
}

TEST(MegaDcIntegration, PaperScaleConfigShapesMatchPaper) {
  const MegaDcConfig cfg = paperScaleConfig();
  EXPECT_EQ(cfg.topology.numServers, 300'000u);
  EXPECT_EQ(cfg.numApps, 300'000u);
  EXPECT_EQ(cfg.numPods, 60u);
  EXPECT_EQ(cfg.topology.numServers / cfg.numPods, 5000u);
  EXPECT_GE(cfg.topology.numSwitches, 375u);
  EXPECT_EQ(cfg.manager.vipsPerApp, 3u);
}

}  // namespace
}  // namespace mdc
