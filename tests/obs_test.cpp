// Tests for the observability layer: the trace ring's wrap/overflow
// accounting, the metrics registry's ownership and callback semantics,
// the exporters' formats, causal trace continuity through channel
// misbehavior (retry, duplicate delivery, term fencing), and the
// registry-vs-EpochReport equivalence on a long run.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mdc/ctrl/command_sender.hpp"
#include "mdc/ctrl/control_channel.hpp"
#include "mdc/obs/export.hpp"
#include "mdc/obs/metrics_registry.hpp"
#include "mdc/obs/phase_profiler.hpp"
#include "mdc/obs/trace.hpp"
#include "mdc/scenario/megadc.hpp"

namespace mdc {
namespace {

// --- trace ring ------------------------------------------------------------

TEST(TraceRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing{1}.capacity(), 2u);
  EXPECT_EQ(TraceRing{2}.capacity(), 2u);
  EXPECT_EQ(TraceRing{5}.capacity(), 8u);
  EXPECT_EQ(TraceRing{8}.capacity(), 8u);
  EXPECT_EQ(TraceRing{1000}.capacity(), 1024u);
}

TEST(TraceRing, WrapOverwritesOldestAndCountsLoss) {
  TraceRing ring{4};
  for (std::uint64_t i = 0; i < 11; ++i) {
    TraceEvent e;
    e.trace = 1;
    e.a = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.total(), 11u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.overwritten(), 7u);

  // Snapshot returns the survivors oldest first: events 7..10.
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 7u + i);
  }
}

TEST(TraceRing, BeforeWrapNothingIsLost) {
  TraceRing ring{8};
  for (std::uint64_t i = 0; i < 3; ++i) {
    TraceEvent e;
    e.a = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().a, 0u);
  EXPECT_EQ(events.back().a, 2u);

  ring.clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, EventCodeTruncatesSafely) {
  TraceEvent e;
  e.setCode("a_status_code_longer_than_fifteen_chars");
  EXPECT_EQ(std::string(e.code), "a_status_code_l");
  e.setCode(nullptr);
  EXPECT_EQ(std::string(e.code), "");
}

TEST(Tracer, DisabledMintsNothingAndRecordsNothing) {
  Simulation sim;
  Tracer tracer{sim, Tracer::Options{16, false}};
  EXPECT_EQ(tracer.begin(), 0u);
  EXPECT_EQ(tracer.newSpan(), 0u);
  tracer.record(1, 1, 0, HopKind::CmdSend, "x");
  EXPECT_EQ(tracer.ring().total(), 0u);

  tracer.setEnabled(true);
  const TraceId t = tracer.begin();
  EXPECT_NE(t, 0u);
  tracer.record(t, tracer.newSpan(), 0, HopKind::CmdSend, "x");
  EXPECT_EQ(tracer.ring().total(), 1u);
  // An untraced command (trace 0) stays invisible even when enabled.
  tracer.record(0, 1, 0, HopKind::CmdSend, "x");
  EXPECT_EQ(tracer.ring().total(), 1u);
}

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, OwnedCellsAreGetOrCreate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("mdc.test.count");
  c.inc();
  c.inc(3);
  EXPECT_EQ(&reg.counter("mdc.test.count"), &c);  // same cell
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.count"), 4.0);

  Gauge& g = reg.gauge("mdc.test.level", {{"pod", "0"}});
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.level", {{"pod", "0"}}), 3.0);
  // Different labels, different cell.
  reg.gauge("mdc.test.level", {{"pod", "1"}}).set(9.0);
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.level", {{"pod", "0"}}), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.level", {{"pod", "1"}}), 9.0);

  Histogram& h = reg.histogram("mdc.test.latency", 0.001, 10.0);
  h.record(0.5);
  h.record(2.0);
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.latency"), 2.0);  // observation count

  EXPECT_TRUE(reg.has("mdc.test.count"));
  EXPECT_FALSE(reg.has("mdc.test.count", {{"pod", "0"}}));
  EXPECT_EQ(reg.metricCount(), 4u);
}

TEST(MetricsRegistry, KeyCanonicalizesLabelOrder) {
  const std::string a =
      MetricsRegistry::keyOf("m", {{"b", "2"}, {"a", "1"}});
  const std::string b =
      MetricsRegistry::keyOf("m", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::keyOf("m", {}), "m");
}

TEST(MetricsRegistry, CallbackReRegistrationReplaces) {
  MetricsRegistry reg;
  int generation = 1;
  reg.registerGauge("mdc.test.cb", [&generation] {
    return static_cast<double>(generation) * 10.0;
  });
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.cb"), 10.0);
  generation = 2;
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.cb"), 20.0);

  // A component rebuild re-registers the same key: the new callback wins
  // and the metric count stays flat.
  reg.registerGauge("mdc.test.cb", [] { return 77.0; });
  EXPECT_DOUBLE_EQ(reg.value("mdc.test.cb"), 77.0);
  EXPECT_EQ(reg.metricCount(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByKey) {
  MetricsRegistry reg;
  reg.counter("mdc.z.last").inc();
  reg.gauge("mdc.a.first").set(1.0);
  reg.registerGauge("mdc.m.mid", [] { return 5.0; });
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "mdc.a.first");
  EXPECT_EQ(samples[1].name, "mdc.m.mid");
  EXPECT_DOUBLE_EQ(samples[1].value, 5.0);
  EXPECT_EQ(samples[2].name, "mdc.z.last");
}

// --- exporters -------------------------------------------------------------

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsExport, SpanJsonlOneLinePerEvent) {
  Simulation sim;
  Tracer tracer{sim, Tracer::Options{16, true}};
  const TraceId t = tracer.begin();
  const SpanId root = tracer.newSpan();
  tracer.record(t, root, 0, HopKind::RequestSubmitted, "NewVip", 3, 1);
  const SpanId child = tracer.newSpan();
  tracer.record(t, child, root, HopKind::CmdSend, "ConfigureVip", 0, 1);
  tracer.record(t, child, root, HopKind::CmdAcked, "acked", 0, 1);

  std::ostringstream out;
  EXPECT_EQ(exportSpansJsonl(tracer.ring(), out), 3u);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"hop\":\"request_submitted\""), std::string::npos);
  EXPECT_NE(text.find("\"hop\":\"cmd_acked\""), std::string::npos);
  EXPECT_NE(text.find("\"code\":\"NewVip\""), std::string::npos);
  // Exactly three newline-terminated records.
  std::size_t lines = 0;
  for (const char ch : text) lines += (ch == '\n') ? 1u : 0u;
  EXPECT_EQ(lines, 3u);
}

TEST(ObsExport, MetricsJsonlAndTimeSeriesCsv) {
  MetricsRegistry reg;
  reg.counter("mdc.test.count").inc(7);
  reg.gauge("mdc.test.level", {{"pod", "0"}}).set(1.5);
  std::ostringstream mout;
  EXPECT_EQ(exportMetricsJsonl(reg, mout), 2u);
  EXPECT_NE(mout.str().find("\"name\":\"mdc.test.count\""),
            std::string::npos);
  EXPECT_NE(mout.str().find("\"pod\":\"0\""), std::string::npos);

  TimeSeries s{"served"};
  s.record(0.0, 1.0);
  s.record(2.0, 3.0);
  const TimeSeries* series[] = {&s, nullptr};
  std::ostringstream cout_;
  EXPECT_EQ(exportTimeSeriesCsv(series, cout_), 2u);  // rows, not header
  EXPECT_NE(cout_.str().find("series,time,value"), std::string::npos);
  EXPECT_NE(cout_.str().find("served,2,3"), std::string::npos);
}

// --- phase profiler --------------------------------------------------------

TEST(PhaseProfiler, AccumulatesOnlyWhenEnabled) {
  PhaseProfiler prof;
  { const auto s = prof.time(PhaseProfiler::Phase::Descent); }
  EXPECT_EQ(prof.calls(PhaseProfiler::Phase::Descent), 0u);

  prof.setEnabled(true);
  { const auto s = prof.time(PhaseProfiler::Phase::Descent); }
  { const auto s = prof.time(PhaseProfiler::Phase::Descent); }
  EXPECT_EQ(prof.calls(PhaseProfiler::Phase::Descent), 2u);
  EXPECT_EQ(prof.calls(PhaseProfiler::Phase::Serve), 0u);

  MetricsRegistry reg;
  prof.registerWith(reg);
  EXPECT_DOUBLE_EQ(
      reg.value("mdc.engine.phase_calls", {{"phase", "a1_descent"}}), 2.0);

  prof.reset();
  EXPECT_EQ(prof.calls(PhaseProfiler::Phase::Descent), 0u);
  EXPECT_EQ(prof.ns(PhaseProfiler::Phase::Descent), 0u);
}

// --- trace continuity through channel misbehavior --------------------------

// Events of one command span, in ring (= causal, single-threaded) order.
std::vector<TraceEvent> spanEvents(const Tracer& tracer, SpanId span) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : tracer.ring().snapshot()) {
    if (e.span == span) out.push_back(e);
  }
  return out;
}

std::size_t countHops(const std::vector<TraceEvent>& events, HopKind hop) {
  std::size_t n = 0;
  for (const TraceEvent& e : events) n += (e.hop == hop) ? 1u : 0u;
  return n;
}

std::size_t countTerminals(const std::vector<TraceEvent>& events) {
  std::size_t n = 0;
  for (const TraceEvent& e : events) n += isCommandTerminal(e.hop) ? 1u : 0u;
  return n;
}

TEST(Tracing, RetryReplaysOnTheSameSpanUntilAcked) {
  Simulation sim;
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  ControlChannel channel{sim, 21};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 0.5;
  opt.maxAttempts = 0;
  CommandSender sender{sim, channel, fleet, opt};
  Tracer tracer{sim, Tracer::Options{256, true}};
  channel.setTracer(&tracer);
  sender.setTracer(&tracer);

  // Drop everything for a while, then heal: the command must land via a
  // retransmit, and every attempt must appear on the same span.
  ChannelFaults faults;
  faults.dropRate = 1.0;
  channel.setFaults(faults);

  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = VipId{1};
  cfg.app = AppId{0};
  cfg.trace = tracer.begin();
  int done = 0;
  sender.send(sw, cfg, [&done](Status s) {
    ++done;
    EXPECT_TRUE(s.ok());
  });
  sim.runUntil(2.0);  // a few attempts, all dropped
  EXPECT_EQ(done, 0);
  channel.setFaults(ChannelFaults{});
  sim.runUntil(60.0);
  ASSERT_EQ(done, 1);

  // Find the command span: the unique span with a CmdSend.
  SpanId span = 0;
  for (const TraceEvent& e : tracer.ring().snapshot()) {
    if (e.hop == HopKind::CmdSend) span = e.span;
  }
  ASSERT_NE(span, 0u);
  const auto events = spanEvents(tracer, span);
  EXPECT_EQ(countHops(events, HopKind::CmdSend), 1u);
  EXPECT_GE(countHops(events, HopKind::CmdTransmit), 2u);  // retried
  EXPECT_GE(countHops(events, HopKind::ChanDrop), 1u);
  EXPECT_EQ(countHops(events, HopKind::AgentApplied), 1u);  // exactly once
  EXPECT_EQ(countHops(events, HopKind::AckReceived), 1u);
  ASSERT_EQ(countTerminals(events), 1u);
  EXPECT_EQ(events.back().hop, HopKind::CmdAcked);
  EXPECT_EQ(std::string(events.back().code), "acked");
}

TEST(Tracing, DuplicateDeliveryShowsDedupeOnTheSpan) {
  Simulation sim;
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  ControlChannel channel{sim, 22};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 5.0;
  CommandSender sender{sim, channel, fleet, opt};
  Tracer tracer{sim, Tracer::Options{256, true}};
  channel.setTracer(&tracer);
  sender.setTracer(&tracer);

  ChannelFaults faults;
  faults.duplicateRate = 1.0;  // every message arrives twice
  faults.delaySeconds = 0.01;
  channel.setFaults(faults);

  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = VipId{1};
  cfg.app = AppId{0};
  cfg.trace = tracer.begin();
  int done = 0;
  sender.send(sw, cfg, [&done](Status s) {
    ++done;
    EXPECT_TRUE(s.ok());
  });
  sim.runUntil(10.0);
  ASSERT_EQ(done, 1);
  EXPECT_EQ(fleet.at(sw).vipCount(), 1u);

  SpanId span = 0;
  for (const TraceEvent& e : tracer.ring().snapshot()) {
    if (e.hop == HopKind::CmdSend) span = e.span;
  }
  const auto events = spanEvents(tracer, span);
  EXPECT_GE(countHops(events, HopKind::ChanDuplicate), 1u);
  EXPECT_EQ(countHops(events, HopKind::AgentApplied), 1u);
  EXPECT_GE(countHops(events, HopKind::AgentDuplicate), 1u);  // deduped copy
  ASSERT_EQ(countTerminals(events), 1u);
  EXPECT_EQ(countHops(events, HopKind::CmdAcked), 1u);
}

TEST(Tracing, StaleTermRefusalLandsOnTheCancelledSpan) {
  Simulation sim;
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  ControlChannel channel{sim, 23};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 30.0;  // no retransmit noise
  CommandSender sender{sim, channel, fleet, opt};
  Tracer tracer{sim, Tracer::Options{256, true}};
  channel.setTracer(&tracer);
  sender.setTracer(&tracer);

  // A slow channel: the term-1 command is still in flight when the term
  // changes underneath it.
  ChannelFaults slow;
  slow.delaySeconds = 5.0;
  channel.setFaults(slow);

  SwitchCommand old;
  old.kind = CmdKind::ConfigureVip;
  old.vip = VipId{1};
  old.app = AppId{0};
  old.trace = tracer.begin();
  Status oldOutcome;
  sender.send(sw, old, [&oldOutcome](Status s) { oldOutcome = std::move(s); });
  SpanId oldSpan = 0;
  for (const TraceEvent& e : tracer.ring().snapshot()) {
    if (e.hop == HopKind::CmdSend) oldSpan = e.span;
  }
  ASSERT_NE(oldSpan, 0u);

  // Failover at t=1: term 2 cancels the in-flight command...
  sim.runUntil(1.0);
  sender.beginTerm(2);
  ASSERT_FALSE(oldOutcome.ok());
  EXPECT_EQ(oldOutcome.error().code, "cancelled");

  // ...and a faster term-2 command teaches the agent the new term before
  // the old copy arrives.
  ChannelFaults quick;
  quick.delaySeconds = 0.5;
  channel.setFaults(quick);
  SwitchCommand fresh;
  fresh.kind = CmdKind::ConfigureVip;
  fresh.vip = VipId{2};
  fresh.app = AppId{0};
  fresh.trace = tracer.begin();
  sender.send(sw, fresh, [](Status s) { EXPECT_TRUE(s.ok()); });

  sim.runUntil(30.0);
  EXPECT_EQ(sender.agentOf(sw).term(), 2u);
  EXPECT_EQ(sender.agentOf(sw).staleTermRejections(), 1u);
  EXPECT_FALSE(fleet.at(sw).hasVip(VipId{1}));  // fenced out, never applied

  // The refusal is recorded on the *original* span: the whole story of
  // the old command — send, cancellation, late fencing — reads in order.
  const auto events = spanEvents(tracer, oldSpan);
  EXPECT_EQ(countHops(events, HopKind::CmdSend), 1u);
  EXPECT_EQ(countHops(events, HopKind::CmdCancelled), 1u);
  EXPECT_EQ(countHops(events, HopKind::AgentStaleTerm), 1u);
  EXPECT_EQ(countHops(events, HopKind::AgentApplied), 0u);
  EXPECT_EQ(countTerminals(events), 1u);  // cancelled once, not twice
}

// --- registry vs. EpochReport ---------------------------------------------

TEST(Obs, RegistryMatchesEpochReportGaugesOverFiftyEpochs) {
  MegaDcConfig cfg = testScaleConfig();
  cfg.ctrlFaults.dropRate = 0.1;  // keep the control counters moving
  cfg.ctrlFaults.delaySeconds = 0.02;
  MegaDc dc{cfg};
  dc.bootstrap();

  const SimTime epoch = cfg.engine.epoch;
  for (int e = 0; e < 50; ++e) {
    dc.runUntil(dc.sim.now() + epoch);
    // A direct step() yields a report with nothing running between the
    // snapshot and the registry reads below, so the comparison is exact.
    const EpochReport r = dc.engine->step();
    const MetricsRegistry& m = dc.metrics;
    EXPECT_DOUBLE_EQ(m.value("mdc.ctrl.messages_dropped"),
                     static_cast<double>(r.ctrlMessagesDropped));
    EXPECT_DOUBLE_EQ(m.value("mdc.ctrl.retransmits"),
                     static_cast<double>(r.ctrlRetransmits));
    EXPECT_DOUBLE_EQ(m.value("mdc.ctrl.timeouts"),
                     static_cast<double>(r.ctrlTimeouts));
    EXPECT_DOUBLE_EQ(m.value("mdc.ctrl.partitioned_links"),
                     static_cast<double>(r.ctrlPartitionedLinks));
    EXPECT_DOUBLE_EQ(m.value("mdc.ctrl.stale_term_rejections"),
                     static_cast<double>(r.ctrlStaleTermRejections));
    EXPECT_DOUBLE_EQ(m.value("mdc.ctrl.cancelled_commands"),
                     static_cast<double>(r.ctrlCancelledCommands));
    EXPECT_DOUBLE_EQ(m.value("mdc.reconciler.divergence_last_round"),
                     static_cast<double>(r.ctrlDriftLastAudit));
    EXPECT_DOUBLE_EQ(m.value("mdc.reconciler.repairs_issued"),
                     static_cast<double>(r.ctrlRepairsIssued));
    EXPECT_DOUBLE_EQ(m.value("mdc.manager.term"),
                     static_cast<double>(r.managerTerm));
    EXPECT_DOUBLE_EQ(m.value("mdc.manager.leader_up"),
                     r.managerLeaderUp ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(m.value("mdc.manager.alive_instances"),
                     static_cast<double>(r.managerAlive));
    EXPECT_DOUBLE_EQ(m.value("mdc.manager.failovers"),
                     static_cast<double>(r.managerFailovers));
    EXPECT_DOUBLE_EQ(m.value("mdc.manager.pod_restarts"),
                     static_cast<double>(r.podManagerRestarts));
    EXPECT_DOUBLE_EQ(m.value("mdc.fault.injected"),
                     static_cast<double>(r.faultsInjected));
    EXPECT_DOUBLE_EQ(m.value("mdc.fault.repairs_applied"),
                     static_cast<double>(r.faultRepairsApplied));
    EXPECT_DOUBLE_EQ(m.value("mdc.fleet.down_switches"),
                     static_cast<double>(r.downSwitches));
    EXPECT_DOUBLE_EQ(m.value("mdc.hosts.down_servers"),
                     static_cast<double>(r.downServers));
    EXPECT_DOUBLE_EQ(m.value("mdc.fleet.orphaned_vips"),
                     static_cast<double>(r.orphanedVips));
  }
  // The registry's control counters saw real traffic, not all zeros.
  EXPECT_GT(dc.metrics.value("mdc.ctrl.messages_sent"), 0.0);
  EXPECT_GT(dc.metrics.value("mdc.ctrl.retransmits"), 0.0);
}

TEST(Obs, RegistrySurvivesDemandModelSwap) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  const std::size_t before = dc.metrics.metricCount();
  std::vector<double> rates(cfg.numApps, 1000.0);
  dc.setDemandModel(std::make_unique<StaticDemand>(rates));
  // Re-registration replaced callbacks instead of duplicating metrics,
  // and the engine gauges read the *new* engine.
  EXPECT_EQ(dc.metrics.metricCount(), before);
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 5 * cfg.engine.epoch);
  EXPECT_DOUBLE_EQ(dc.metrics.value("mdc.engine.apps_recomputed"),
                   static_cast<double>(dc.engine->appsRecomputed()));
  EXPECT_GT(dc.metrics.value("mdc.engine.apps_recomputed"), 0.0);
}

}  // namespace
}  // namespace mdc
