// Unit tests for the pod registry and pod manager.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mdc/core/pod.hpp"

namespace mdc {
namespace {

/// Records RIP requests instead of touching switches.
class RecordingSink final : public RipRequestSink {
 public:
  void requestNewRip(AppId app, VmId vm, double weight) override {
    newRips.push_back({app, vm, weight});
  }
  void requestRipRemoval(VmId vm, std::function<void()> onDone) override {
    removals.push_back(vm);
    if (onDone) onDone();  // pretend the switch update applied instantly
  }
  void requestRipWeight(VmId vm, double weight) override {
    weightUpdates.push_back({vm, weight});
  }

  struct NewRip {
    AppId app;
    VmId vm;
    double weight;
  };
  std::vector<NewRip> newRips;
  std::vector<VmId> removals;
  std::vector<std::pair<VmId, double>> weightUpdates;
};

struct Fixture {
  Simulation sim;
  Topology topo;
  HostFleet hosts;
  AppRegistry apps;
  PodRegistry registry;
  RecordingSink sink;
  std::vector<std::unique_ptr<PodManager>> pods;

  static TopologyConfig topoConfig() {
    TopologyConfig cfg;
    cfg.numServers = 8;
    cfg.serverCapacity = CapacityVec{8.0, 32.0, 1.0};
    cfg.numSwitches = 1;
    return cfg;
  }
  static HostCostModel costs() {
    HostCostModel c;
    c.vmBootSeconds = 4.0;
    c.vmCloneSeconds = 1.0;
    c.capacityAdjustSeconds = 0.5;
    c.migrationGbps = 32.0;  // 1 GB in 0.25 s
    return c;
  }
  static PodManager::Options podOptions() {
    PodManager::Options o;
    o.controlPeriod = 5.0;
    return o;
  }

  Fixture() : topo(topoConfig()), hosts(topo, sim, costs()),
              registry(topoConfig().numServers) {}

  PodManager& makePod(std::vector<ServerId> servers) {
    const PodId id{static_cast<PodId::value_type>(pods.size())};
    pods.push_back(std::make_unique<PodManager>(
        id, sim, hosts, apps, topo, registry,
        std::make_shared<PlacementController>(), sink, podOptions()));
    for (ServerId s : servers) pods.back()->adoptServer(s);
    return *pods.back();
  }
};

TEST(PodRegistry, AssignAndMove) {
  PodRegistry reg{4};
  reg.assign(ServerId{0}, PodId{0});
  reg.assign(ServerId{1}, PodId{0});
  reg.assign(ServerId{2}, PodId{1});
  EXPECT_EQ(reg.podOf(ServerId{0}), PodId{0});
  EXPECT_EQ(reg.serversOf(PodId{0}).size(), 2u);
  EXPECT_FALSE(reg.podOf(ServerId{3}).valid());

  reg.assign(ServerId{1}, PodId{1});
  EXPECT_EQ(reg.serversOf(PodId{0}).size(), 1u);
  EXPECT_EQ(reg.serversOf(PodId{1}).size(), 2u);
}

TEST(PodRegistry, ReassignToSamePodIsNoop) {
  PodRegistry reg{2};
  reg.assign(ServerId{0}, PodId{0});
  reg.assign(ServerId{0}, PodId{0});
  EXPECT_EQ(reg.serversOf(PodId{0}).size(), 1u);
}

TEST(PodRegistry, UnknownServerThrows) {
  PodRegistry reg{2};
  EXPECT_THROW(reg.assign(ServerId{9}, PodId{0}), PreconditionError);
  EXPECT_THROW((void)reg.podOf(ServerId{9}), PreconditionError);
}

TEST(PodManager, ControlLoopCreatesVmsForDemand) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}, ServerId{2}});
  const AppId app = f.apps.create("web", AppSla{}, 1000.0);
  pod.setAppDemand(app, 2000.0);
  pod.runControlLoop();
  // VMs created (still booting); RIP requests arrive on activation.
  EXPECT_GT(f.hosts.activeVmCount(), 0u);
  f.sim.runUntil(2.0);  // clones activate
  EXPECT_FALSE(f.sink.newRips.empty());
  EXPECT_EQ(f.sink.newRips[0].app, app);
  // Demand is actually servable by the created slices.
  double servable = 0.0;
  for (const auto& nr : f.sink.newRips) {
    servable +=
        f.apps.app(app).sla.servableRps(f.hosts.vm(nr.vm).effectiveSlice);
  }
  EXPECT_GE(servable, 2000.0);
}

TEST(PodManager, StatsReflectDecision) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}});
  const AppId app = f.apps.create("web", AppSla{}, 1000.0);
  pod.setAppDemand(app, 1000.0);
  pod.runControlLoop();
  const PodStats& st = pod.stats();
  EXPECT_EQ(st.pod, pod.id());
  EXPECT_EQ(st.servers, 2u);
  EXPECT_DOUBLE_EQ(st.demandRps, 1000.0);
  EXPECT_NEAR(st.satisfiedRatio, 1.0, 1e-9);
  EXPECT_GT(st.decisionSeconds, 0.0);
  EXPECT_GT(st.placementChanges, 0u);
}

TEST(PodManager, ShrinksWhenDemandVanishes) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}});
  const AppId app = f.apps.create("web", AppSla{}, 1000.0);
  pod.setAppDemand(app, 2000.0);
  pod.runControlLoop();
  f.sim.runUntil(25.0);  // past the young-VM grace period
  const auto vmsBefore = f.hosts.activeVmCount();
  ASSERT_GT(vmsBefore, 0u);

  pod.setAppDemand(app, 0.0);
  pod.runControlLoop();
  f.sim.runUntil(40.0);
  EXPECT_EQ(f.hosts.activeVmCount(), 0u);
  EXPECT_EQ(f.sink.removals.size(), vmsBefore);
}

TEST(PodManager, PeriodicLoopRuns) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}});
  const AppId app = f.apps.create("web", AppSla{}, 100.0);
  pod.setAppDemand(app, 100.0);
  pod.start();
  f.sim.runUntil(11.0);  // loops at 0, 5, 10 (phase 0)
  EXPECT_GT(f.hosts.activeVmCount(), 0u);
}

TEST(PodManager, AdoptAndDonorSelection) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}, ServerId{2}});
  const AppId app = f.apps.create("web", AppSla{}, 100.0);
  // Load server 0 only.
  ASSERT_TRUE(
      f.hosts.createVm(app, ServerId{0}, CapacityVec{4.0, 8.0, 0.5}).ok());
  const auto donors = pod.pickDonorServers(2);
  ASSERT_EQ(donors.size(), 2u);
  EXPECT_NE(donors[0], ServerId{0});
  EXPECT_NE(donors[1], ServerId{0});
}

TEST(PodManager, VacateServerMigratesAndFires) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}});
  const AppId app = f.apps.create("web", AppSla{}, 100.0);
  const auto vm =
      f.hosts.createVm(app, ServerId{0}, CapacityVec{2.0, 4.0, 0.25});
  ASSERT_TRUE(vm.ok());
  f.sim.runUntil(5.0);  // VM active

  ServerId freed;
  ASSERT_TRUE(pod.vacateServer(ServerId{0},
                               [&](ServerId s) { freed = s; }));
  f.sim.runUntil(10.0);
  EXPECT_EQ(freed, ServerId{0});
  EXPECT_EQ(f.hosts.vm(vm.value()).server, ServerId{1});
  EXPECT_EQ(f.hosts.usedCapacity(ServerId{0}), CapacityVec{});
}

TEST(PodManager, VacateEmptyServerFiresImmediately) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}});
  bool fired = false;
  ASSERT_TRUE(pod.vacateServer(ServerId{0}, [&](ServerId) { fired = true; }));
  EXPECT_TRUE(fired);
}

TEST(PodManager, VacateFailsWhenNoRoom) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}});
  const AppId app = f.apps.create("web", AppSla{}, 100.0);
  // Fill both servers so neither can absorb the other.
  ASSERT_TRUE(
      f.hosts.createVm(app, ServerId{0}, CapacityVec{6.0, 24.0, 0.8}).ok());
  ASSERT_TRUE(
      f.hosts.createVm(app, ServerId{1}, CapacityVec{6.0, 24.0, 0.8}).ok());
  f.sim.runUntil(5.0);
  EXPECT_FALSE(pod.vacateServer(ServerId{0}, {}));
}

TEST(PodManager, VacateFailsWithBootingVm) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}, ServerId{1}});
  const AppId app = f.apps.create("web", AppSla{}, 100.0);
  ASSERT_TRUE(
      f.hosts.createVm(app, ServerId{0}, CapacityVec{1.0, 2.0, 0.1}).ok());
  // Still booting at t=0.
  EXPECT_FALSE(pod.vacateServer(ServerId{0}, {}));
}

TEST(PodManager, CoveredApps) {
  Fixture f;
  PodManager& pod = f.makePod({ServerId{0}});
  const AppId a = f.apps.create("a", AppSla{}, 1.0);
  const AppId b = f.apps.create("b", AppSla{}, 1.0);
  ASSERT_TRUE(
      f.hosts.createVm(a, ServerId{0}, CapacityVec{1.0, 2.0, 0.1}).ok());
  ASSERT_TRUE(
      f.hosts.createVm(b, ServerId{0}, CapacityVec{1.0, 2.0, 0.1}).ok());
  const auto covered = pod.coveredApps();
  EXPECT_EQ(covered.size(), 2u);
}

TEST(PodManager, ElephantTransferMovesServersWithVms) {
  // Moving a server between pods with its VM intact is pure bookkeeping.
  Fixture f;
  PodManager& podA = f.makePod({ServerId{0}, ServerId{1}});
  PodManager& podB = f.makePod({ServerId{2}});
  const AppId app = f.apps.create("web", AppSla{}, 100.0);
  const auto vm =
      f.hosts.createVm(app, ServerId{0}, CapacityVec{2.0, 4.0, 0.2});
  ASSERT_TRUE(vm.ok());

  podB.adoptServer(ServerId{0});  // elephant-relief path
  EXPECT_EQ(f.registry.podOf(ServerId{0}), podB.id());
  EXPECT_EQ(podA.servers().size(), 1u);
  EXPECT_EQ(podB.servers().size(), 2u);
  // VM untouched.
  EXPECT_EQ(f.hosts.vm(vm.value()).server, ServerId{0});
}

}  // namespace
}  // namespace mdc
