// Coverage for the segmented path arena: interning/dedup semantics
// within a segment, segment independence (the lock-free property the
// parallel descent relies on), and cross-segment walks after the join
// barrier.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mdc/net/path_arena.hpp"
#include "mdc/util/expect.hpp"

namespace mdc {
namespace {

TEST(PathArena, InternsAndWalksLeafToRoot) {
  PathArena arena;
  const PathRef a = arena.root(LinkId{3});
  const PathRef ab = arena.extend(a, LinkId{7});
  const PathRef abc = arena.extend(ab, LinkId{9});
  EXPECT_EQ(arena.length(abc), 3u);
  EXPECT_EQ(arena.links(abc),
            (std::vector<LinkId>{LinkId{3}, LinkId{7}, LinkId{9}}));
  EXPECT_EQ(arena.length(PathRef::invalid()), 0u);
  EXPECT_TRUE(arena.links(PathRef::invalid()).empty());
}

TEST(PathArena, SharedPrefixesDedupWithinASegment) {
  PathArena arena;
  const PathRef a1 = arena.root(LinkId{1});
  const PathRef a2 = arena.root(LinkId{1});
  EXPECT_EQ(a1, a2);
  const PathRef ab1 = arena.extend(a1, LinkId{2});
  const PathRef ab2 = arena.extend(a2, LinkId{2});
  EXPECT_EQ(ab1, ab2);
  EXPECT_EQ(arena.size(), 2u);  // [1] and [1,2], stored once each
}

TEST(PathArena, SegmentsAreIndependentButAgreeOnContents) {
  PathArena arena;
  // The same physical path interned by two worker slots yields distinct
  // refs (bounded duplication) whose *links* are identical — node ids
  // are an implementation detail.
  const PathRef s0 = arena.extend(arena.root(LinkId{4}, 0), LinkId{5}, 0);
  const PathRef s3 = arena.extend(arena.root(LinkId{4}, 3), LinkId{5}, 3);
  EXPECT_NE(s0, s3);
  EXPECT_EQ(arena.links(s0), arena.links(s3));
  EXPECT_EQ(arena.size(), 4u);  // 2 nodes in each of the two segments
}

TEST(PathArena, ConcurrentInterningIntoDistinctSegmentsIsSafe) {
  PathArena arena;
  constexpr unsigned kThreads = 8;
  constexpr std::uint32_t kPathsPerThread = 500;
  std::vector<std::vector<PathRef>> refs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Lock-free by partitioning: each thread owns segment t.
      for (std::uint32_t i = 0; i < kPathsPerThread; ++i) {
        PathRef p = arena.root(LinkId{i % 17}, t);
        p = arena.extend(p, LinkId{100 + i % 11}, t);
        p = arena.extend(p, LinkId{200 + i}, t);
        refs[t].push_back(p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Post-barrier: every path reads back correctly across segments.
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint32_t i = 0; i < kPathsPerThread; ++i) {
      EXPECT_EQ(arena.links(refs[t][i]),
                (std::vector<LinkId>{LinkId{i % 17}, LinkId{100 + i % 11},
                                     LinkId{200 + i}}));
    }
  }
}

TEST(PathArena, RejectsInvalidLinkAndBadSegment) {
  PathArena arena;
  EXPECT_THROW((void)arena.root(LinkId{}), PreconditionError);
  EXPECT_THROW((void)arena.root(LinkId{1}, PathArena::kSegments),
               PreconditionError);
}

}  // namespace
}  // namespace mdc
