// End-to-end tests for fault injection, heartbeat failure detection, and
// self-healing recovery (E13): crashed switches must not leave permanent
// black holes, dead VMs must be purged from switch tables, and pod
// outages must freeze inter-pod cooperation until repair.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mdc/fault/fault_injector.hpp"
#include "mdc/scenario/megadc.hpp"

namespace mdc {
namespace {

double dnsWeight(const AuthoritativeDns& dns, AppId app, VipId vip) {
  for (const VipWeight& w : dns.vips(app)) {
    if (w.vip == vip) return w.weight;
  }
  return -1.0;
}

std::vector<std::pair<VipId, AppId>> vipsOn(const MegaDc& dc, SwitchId sw) {
  std::vector<std::pair<VipId, AppId>> hosted;
  for (const Application& a : dc.apps.all()) {
    for (VipId vip : a.vips) {
      if (dc.fleet.ownerOf(vip) == sw) hosted.emplace_back(vip, a.id);
    }
  }
  return hosted;
}

TEST(FaultRecovery, SwitchCrashOrphansRehostedWithinBound) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(100.0);

  const SwitchId victim{0};
  const auto hosted = vipsOn(dc, victim);
  ASSERT_GE(hosted.size(), 2u);  // multi-VIP orphan batch

  dc.faults->crashSwitch(victim, 100.5);  // never repaired

  // Worst-case recovery: detection delay + one heartbeat + the serialized
  // restore of every orphan + a couple of engine epochs of slack.
  const auto& h = dc.health->options();
  const double bound =
      dc.health->detectionDelayBound() + h.heartbeatInterval +
      static_cast<double>(hosted.size()) *
          (dc.config().manager.viprip.processSeconds +
           dc.config().switchLimits.reconfigSeconds) +
      2.0 * dc.config().engine.epoch + 5.0;
  dc.runUntil(100.5 + bound);

  EXPECT_EQ(dc.health->switchFailuresDetected(), 1u);
  EXPECT_EQ(dc.health->vipsRestored(), hosted.size());
  EXPECT_EQ(dc.fleet.pendingOrphans(), 0u);
  for (const auto& [vip, app] : hosted) {
    const auto owner = dc.fleet.ownerOf(vip);
    ASSERT_TRUE(owner.has_value());     // re-hosted...
    EXPECT_NE(*owner, victim);          // ...on a healthy switch...
    EXPECT_TRUE(dc.fleet.isUp(*owner));
    EXPECT_GT(dnsWeight(dc.dns, app, vip), 0.0);  // ...and exposed again.
  }
  EXPECT_EQ(dc.health->vipRecoverySeconds().count(), hosted.size());
  EXPECT_LE(dc.health->vipRecoverySeconds().maxRecorded(), bound);

  // No permanent black hole: once restored, nothing is unrouted for lack
  // of a VIP owner and demand is served again.
  dc.runUntil(dc.sim.now() + 20.0);
  const EpochReport& r = dc.engine->latest();
  const auto noOwner = r.unroutedByCause.find("no_owner");
  EXPECT_LT(noOwner == r.unroutedByCause.end() ? 0.0 : noOwner->second, 1.0);
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
  EXPECT_GT(dc.health->unavailabilityRpsSeconds(), 0.0);  // blackout cost
}

TEST(FaultRecovery, ServerCrashPurgesDeadVmsAndHeals) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(100.0);

  // Pick a server actually hosting VMs.
  ServerId victim;
  for (const ServerInfo& s : dc.topo.servers()) {
    if (!dc.hosts.vmsOn(s.id).empty()) {
      victim = s.id;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());

  dc.faults->crashServer(victim, 100.5, /*repairAfter=*/100.0);
  dc.runUntil(102.0);
  EXPECT_EQ(dc.hosts.downServers(), 1u);
  const std::uint64_t lost = dc.hosts.vmsLostToCrashes();
  EXPECT_GT(lost, 0u);

  dc.runUntil(160.0);
  // Every casualty detected and its dangling RIPs purged.
  EXPECT_GE(dc.health->serverFailuresDetected(), 1u);
  EXPECT_EQ(dc.health->vmsCleanedUp(), lost);
  EXPECT_TRUE(dc.hosts.crashCasualties().empty());
  EXPECT_EQ(dc.health->vmCleanupSeconds().count(), lost);

  dc.runUntil(260.0);
  EXPECT_EQ(dc.hosts.downServers(), 0u);  // repaired at t=200.5
  EXPECT_TRUE(dc.hosts.serverUp(victim));
  const EpochReport& r = dc.engine->latest();
  const auto deadVm = r.unroutedByCause.find("dead_vm");
  EXPECT_LT(deadVm == r.unroutedByCause.end() ? 0.0 : deadVm->second, 1.0);
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
}

TEST(FaultRecovery, PodOutageFreezesUntilRepair) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(50.0);

  const PodId pod{0};
  EXPECT_FALSE(dc.health->isPodSuspect(pod));
  dc.faults->podOutage(pod, 50.5, /*repairAfter=*/40.0);

  dc.runUntil(50.5 + dc.health->detectionDelayBound() +
              dc.health->options().heartbeatInterval);
  EXPECT_TRUE(dc.health->isPodSuspect(pod));
  EXPECT_GE(dc.health->podFailuresDetected(), 1u);

  // Back online at t=90.5; the next heartbeat clears the suspicion.
  dc.runUntil(90.5 + 2.0 * dc.health->options().heartbeatInterval);
  EXPECT_FALSE(dc.health->isPodSuspect(pod));
}

TEST(FaultRecovery, RestoreRetriesWhenFleetHasNoHeadroom) {
  // VIP tables sized so the 12 deployed VIPs fill all three switches
  // exactly: after a crash the survivors have zero spare slots and every
  // RestoreVip must retry with backoff until the victim reboots (empty).
  MegaDcConfig cfg = testScaleConfig();
  cfg.switchLimits.maxVips = 4;
  MegaDc dc{cfg};
  dc.bootstrap();
  dc.runUntil(100.0);

  const SwitchId victim{0};
  const auto hosted = vipsOn(dc, victim);
  ASSERT_EQ(hosted.size(), 4u);

  dc.faults->crashSwitch(victim, 100.5, /*repairAfter=*/30.0);
  dc.runUntil(300.0);

  EXPECT_GT(dc.health->restoreRetries(), 0u);
  EXPECT_EQ(dc.health->vipsRestored(), hosted.size());
  EXPECT_EQ(dc.fleet.pendingOrphans(), 0u);
  for (const auto& [vip, app] : hosted) {
    EXPECT_TRUE(dc.fleet.ownerOf(vip).has_value());
    EXPECT_GT(dnsWeight(dc.dns, app, vip), 0.0);
  }
}

TEST(FaultRecovery, InjectorPlanIsDeterministic) {
  auto run = [] {
    Simulation sim;
    TopologyConfig tcfg;
    tcfg.numServers = 8;
    tcfg.numIsps = 2;
    tcfg.numSwitches = 4;
    Topology topo{tcfg};
    SwitchFleet fleet;
    for (int i = 0; i < 4; ++i) fleet.addSwitch(SwitchLimits{});
    HostFleet hosts{topo, sim, HostCostModel{}};
    FaultInjector inj{sim, topo, fleet, hosts, FaultInjector::Options{42}};
    FaultInjector::RandomPlan plan;
    plan.start = 0.0;
    plan.end = 100.0;
    plan.switchCrashes = 2;
    plan.serverCrashes = 3;
    plan.linkCuts = 1;
    plan.repairAfter = 20.0;
    inj.schedulePlan(plan);
    sim.runUntil(200.0);
    return inj.history();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_DOUBLE_EQ(a[i].repairAt, b[i].repairAt);
  }
}

TEST(FaultRecovery, DisabledMonitorLeavesBlackHole) {
  MegaDcConfig cfg = testScaleConfig();
  cfg.enableHealthMonitor = false;
  MegaDc dc{cfg};
  EXPECT_EQ(dc.health, nullptr);
  dc.bootstrap();
  dc.runUntil(100.0);
  const auto hosted = vipsOn(dc, SwitchId{0});
  ASSERT_FALSE(hosted.empty());
  dc.faults->crashSwitch(SwitchId{0}, 100.5);
  dc.runUntil(200.0);
  // Nobody recovers the orphans: the black hole persists.
  EXPECT_EQ(dc.fleet.pendingOrphans(), hosted.size());
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.unroutedByCause.count("no_owner")
                ? r.unroutedByCause.at("no_owner")
                : 0.0,
            0.0);
}

}  // namespace
}  // namespace mdc
