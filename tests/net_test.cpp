// Unit and property tests for the flow-level network engine.
#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "mdc/net/network.hpp"
#include "mdc/sim/rng.hpp"

namespace mdc {
namespace {

Network twoLinkNet(double capA, double capB) {
  Network net;
  net.addLink("a", capA);
  net.addLink("b", capB);
  return net;
}

TEST(Network, AddAndQueryLinks) {
  Network net;
  const LinkId a = net.addLink("uplink", 10.0);
  EXPECT_EQ(net.linkCount(), 1u);
  EXPECT_EQ(net.link(a).name, "uplink");
  EXPECT_DOUBLE_EQ(net.link(a).capacityGbps, 10.0);
}

TEST(Network, UnknownLinkThrows) {
  Network net;
  EXPECT_THROW((void)net.link(LinkId{0}), PreconditionError);
  EXPECT_THROW((void)net.link(LinkId{}), PreconditionError);
}

TEST(Network, SetCapacity) {
  Network net;
  const LinkId a = net.addLink("x", 5.0);
  net.setCapacity(a, 1.0);
  EXPECT_DOUBLE_EQ(net.link(a).capacityGbps, 1.0);
  EXPECT_THROW(net.setCapacity(a, -1.0), PreconditionError);
}

TEST(Network, UncontendedFlowGetsFullDemand) {
  Network net = twoLinkNet(10.0, 10.0);
  std::vector<Flow> flows{{3.0, {LinkId{0}, LinkId{1}}}};
  const auto alloc = net.allocate(flows);
  EXPECT_DOUBLE_EQ(alloc.flowRate[0], 3.0);
  EXPECT_DOUBLE_EQ(alloc.linkServed[0], 3.0);
  EXPECT_DOUBLE_EQ(alloc.linkOffered[0], 3.0);
}

TEST(Network, BottleneckSharedEqually) {
  Network net = twoLinkNet(4.0, 100.0);
  std::vector<Flow> flows{
      {10.0, {LinkId{0}}},
      {10.0, {LinkId{0}}},
  };
  const auto alloc = net.allocate(flows);
  EXPECT_NEAR(alloc.flowRate[0], 2.0, 1e-9);
  EXPECT_NEAR(alloc.flowRate[1], 2.0, 1e-9);
  EXPECT_NEAR(alloc.linkServed[0], 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(alloc.linkOffered[0], 20.0);
}

TEST(Network, SmallFlowUnconstrainedByBigNeighbor) {
  // Max-min property: a flow demanding less than its fair share gets its
  // full demand; the rest goes to the bigger flow.
  Network net = twoLinkNet(10.0, 100.0);
  std::vector<Flow> flows{
      {2.0, {LinkId{0}}},
      {50.0, {LinkId{0}}},
  };
  const auto alloc = net.allocate(flows);
  EXPECT_NEAR(alloc.flowRate[0], 2.0, 1e-9);
  EXPECT_NEAR(alloc.flowRate[1], 8.0, 1e-9);
}

TEST(Network, MultiHopBottleneckIsTightestLink) {
  Network net;
  net.addLink("wide", 100.0);
  net.addLink("narrow", 1.0);
  std::vector<Flow> flows{{5.0, {LinkId{0}, LinkId{1}}}};
  const auto alloc = net.allocate(flows);
  EXPECT_NEAR(alloc.flowRate[0], 1.0, 1e-9);
}

TEST(Network, CrossTrafficScenario) {
  // Flow 0 crosses links A and B; flow 1 only A; flow 2 only B.
  Network net = twoLinkNet(10.0, 4.0);
  std::vector<Flow> flows{
      {100.0, {LinkId{0}, LinkId{1}}},
      {100.0, {LinkId{0}}},
      {100.0, {LinkId{1}}},
  };
  const auto alloc = net.allocate(flows);
  // B (cap 4) is the tighter bottleneck for flows 0 and 2: 2 each.
  EXPECT_NEAR(alloc.flowRate[0], 2.0, 1e-9);
  EXPECT_NEAR(alloc.flowRate[2], 2.0, 1e-9);
  // Flow 1 then takes the rest of A: 10 - 2 = 8.
  EXPECT_NEAR(alloc.flowRate[1], 8.0, 1e-9);
}

TEST(Network, ZeroDemandFlow) {
  Network net = twoLinkNet(1.0, 1.0);
  std::vector<Flow> flows{{0.0, {LinkId{0}}}};
  const auto alloc = net.allocate(flows);
  EXPECT_DOUBLE_EQ(alloc.flowRate[0], 0.0);
}

TEST(Network, EmptyPathAlwaysServed) {
  Network net = twoLinkNet(1.0, 1.0);
  std::vector<Flow> flows{{42.0, {}}};
  const auto alloc = net.allocate(flows);
  EXPECT_DOUBLE_EQ(alloc.flowRate[0], 42.0);
}

TEST(Network, ZeroCapacityLinkBlocksFlow) {
  Network net;
  net.addLink("down", 0.0);
  std::vector<Flow> flows{{5.0, {LinkId{0}}}};
  const auto alloc = net.allocate(flows);
  EXPECT_DOUBLE_EQ(alloc.flowRate[0], 0.0);
}

TEST(Network, NegativeDemandThrows) {
  Network net = twoLinkNet(1.0, 1.0);
  std::vector<Flow> flows{{-1.0, {LinkId{0}}}};
  EXPECT_THROW((void)net.allocate(flows), PreconditionError);
}

TEST(Network, UtilizationComputation) {
  Network net = twoLinkNet(10.0, 0.0);
  std::vector<Flow> flows{{5.0, {LinkId{0}}}, {1.0, {LinkId{1}}}};
  const auto offered = net.offeredLoad(flows);
  const auto util = net.utilization(offered);
  EXPECT_DOUBLE_EQ(util[0], 0.5);
  EXPECT_TRUE(std::isinf(util[1]));
}

TEST(Network, TotalServedNeverExceedsDemand) {
  Network net = twoLinkNet(3.0, 7.0);
  std::vector<Flow> flows{
      {2.0, {LinkId{0}}},
      {9.0, {LinkId{1}}},
      {4.0, {LinkId{0}, LinkId{1}}},
  };
  const auto alloc = net.allocate(flows);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_LE(alloc.flowRate[i], flows[i].demandGbps + 1e-9);
  }
  EXPECT_LE(alloc.totalServed(), alloc.totalDemand(flows) + 1e-9);
}

// Property suite: randomized flow sets must respect capacity and demand
// bounds, and allocation must be work-conserving on saturated links.
class NetworkPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkPropertyTest, AllocationInvariants) {
  Rng rng{GetParam()};
  Network net;
  const std::size_t nLinks = 3 + rng.uniformInt(6);
  for (std::size_t i = 0; i < nLinks; ++i) {
    net.addLink("l" + std::to_string(i), rng.uniform(0.5, 20.0));
  }
  std::vector<Flow> flows;
  const std::size_t nFlows = 1 + rng.uniformInt(20);
  for (std::size_t f = 0; f < nFlows; ++f) {
    Flow flow;
    flow.demandGbps = rng.uniform(0.0, 10.0);
    const std::size_t hops = 1 + rng.uniformInt(3);
    for (std::size_t h = 0; h < hops; ++h) {
      const LinkId l{static_cast<LinkId::value_type>(rng.uniformInt(nLinks))};
      if (std::find(flow.path.begin(), flow.path.end(), l) ==
          flow.path.end()) {
        flow.path.push_back(l);
      }
    }
    flows.push_back(std::move(flow));
  }

  const auto alloc = net.allocate(flows);

  // (1) Demand bound per flow.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(alloc.flowRate[f], -1e-9);
    EXPECT_LE(alloc.flowRate[f], flows[f].demandGbps + 1e-9);
  }
  // (2) Capacity bound per link.
  for (std::size_t l = 0; l < nLinks; ++l) {
    EXPECT_LE(alloc.linkServed[l],
              net.link(LinkId{static_cast<LinkId::value_type>(l)})
                      .capacityGbps + 1e-6);
  }
  // (3) Work conservation: every unsatisfied flow crosses at least one
  // (approximately) saturated link.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (alloc.flowRate[f] < flows[f].demandGbps - 1e-6) {
      bool saturated = false;
      for (LinkId l : flows[f].path) {
        const double cap = net.link(l).capacityGbps;
        if (alloc.linkServed[l.index()] >= cap - 1e-6) saturated = true;
      }
      EXPECT_TRUE(saturated) << "flow " << f << " starved without bottleneck";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFlowSets, NetworkPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace mdc
