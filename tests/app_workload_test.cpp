// Unit tests for the application model and workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <numeric>

#include "mdc/app/app_registry.hpp"
#include "mdc/workload/demand.hpp"

namespace mdc {
namespace {

TEST(AppSla, DemandScalesLinearly) {
  AppSla sla;  // 1 core/krps, 2 GB, 0.04 Gbps/krps
  const CapacityVec d = sla.demandFor(2000.0);
  EXPECT_DOUBLE_EQ(d.cpu(), 2.0);
  EXPECT_DOUBLE_EQ(d.memory(), 2.0);
  EXPECT_DOUBLE_EQ(d.network(), 0.08);
  EXPECT_THROW((void)sla.demandFor(-1.0), PreconditionError);
}

TEST(AppSla, ServableRpsIsBindingResource) {
  AppSla sla;
  // CPU allows 2 krps; network allows 1 krps -> network binds.
  const CapacityVec s{2.0, 2.0, 0.04};
  EXPECT_DOUBLE_EQ(sla.servableRps(s), 1000.0);
}

TEST(AppSla, ServableRpsZeroWithoutMemoryFootprint) {
  AppSla sla;
  const CapacityVec s{2.0, 1.0, 1.0};  // mem < footprint
  EXPECT_DOUBLE_EQ(sla.servableRps(s), 0.0);
}

TEST(AppSla, SliceForCoversDemandWithHeadroom) {
  AppSla sla;
  const CapacityVec s = sla.sliceFor(1000.0, 1.5);
  EXPECT_DOUBLE_EQ(s.cpu(), 1.5);
  EXPECT_DOUBLE_EQ(s.memory(), 2.0);
  EXPECT_GE(sla.servableRps(s), 1000.0);
  EXPECT_THROW((void)sla.sliceFor(1000.0, 0.5), PreconditionError);
}

TEST(AppRegistry, CreateAndQuery) {
  AppRegistry reg;
  const AppId id = reg.create("web-0", AppSla{}, 500.0);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.app(id).name, "web-0");
  EXPECT_DOUBLE_EQ(reg.app(id).baseRps, 500.0);
  EXPECT_THROW((void)reg.app(AppId{5}), PreconditionError);
}

TEST(AppRegistry, VipAndInstanceAttachment) {
  AppRegistry reg;
  const AppId id = reg.create("a", AppSla{}, 1.0);
  reg.addVip(id, VipId{3});
  EXPECT_THROW(reg.addVip(id, VipId{3}), PreconditionError);
  reg.addInstance(id, VmId{7});
  EXPECT_EQ(reg.app(id).vips.size(), 1u);
  EXPECT_EQ(reg.app(id).instances.size(), 1u);
  reg.removeVip(id, VipId{3});
  reg.removeInstance(id, VmId{7});
  EXPECT_TRUE(reg.app(id).vips.empty());
  EXPECT_THROW(reg.removeInstance(id, VmId{7}), PreconditionError);
}

TEST(StaticDemand, ConstantOverTime) {
  StaticDemand d{{100.0, 200.0}, 2.0};
  EXPECT_DOUBLE_EQ(d.rps(AppId{0}, 0.0), 200.0);
  EXPECT_DOUBLE_EQ(d.rps(AppId{0}, 1e6), 200.0);
  EXPECT_DOUBLE_EQ(d.rps(AppId{1}, 5.0), 400.0);
  EXPECT_THROW((void)d.rps(AppId{2}, 0.0), PreconditionError);
}

TEST(DiurnalDemand, OscillatesWithinEnvelope) {
  DiurnalDemand d{{1000.0}, 0.6, 86400.0, 42};
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double v = d.rps(AppId{0}, i * 86400.0 / 200.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Envelope: base * [1 - depth, 1].
  EXPECT_NEAR(lo, 400.0, 10.0);
  EXPECT_NEAR(hi, 1000.0, 10.0);
}

TEST(DiurnalDemand, PhasesDifferAcrossApps) {
  DiurnalDemand d{{1000.0, 1000.0, 1000.0, 1000.0}, 0.5, 86400.0, 7};
  // With random phases, apps should not all peak simultaneously.
  bool differ = false;
  for (int a = 1; a < 4; ++a) {
    if (std::abs(d.rps(AppId{0}, 0.0) -
                 d.rps(AppId{static_cast<std::uint32_t>(a)}, 0.0)) > 1.0) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(FlashCrowdDemand, SpikeRampsAndDecays) {
  auto base = std::make_unique<StaticDemand>(std::vector<double>{100.0});
  FlashCrowdDemand::Spike spike;
  spike.app = AppId{0};
  spike.start = 100.0;
  spike.end = 200.0;
  spike.multiplier = 10.0;
  spike.rampSeconds = 50.0;
  FlashCrowdDemand d{std::move(base), {spike}};

  EXPECT_DOUBLE_EQ(d.rps(AppId{0}, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(d.rps(AppId{0}, 125.0), 100.0 * (1.0 + 9.0 * 0.5));
  EXPECT_DOUBLE_EQ(d.rps(AppId{0}, 175.0), 1000.0);  // fully ramped
  // Decays after the end.
  EXPECT_LT(d.rps(AppId{0}, 300.0), 1000.0);
  EXPECT_GT(d.rps(AppId{0}, 300.0), 100.0);
  EXPECT_NEAR(d.rps(AppId{0}, 2000.0), 100.0, 1.0);
}

TEST(FlashCrowdDemand, OtherAppsUnaffected) {
  auto base =
      std::make_unique<StaticDemand>(std::vector<double>{100.0, 100.0});
  FlashCrowdDemand::Spike spike;
  spike.app = AppId{0};
  spike.start = 0.0;
  spike.end = 100.0;
  FlashCrowdDemand d{std::move(base), {spike}};
  EXPECT_DOUBLE_EQ(d.rps(AppId{1}, 50.0), 100.0);
}

TEST(FlashCrowdDemand, Validation) {
  auto mk = [] {
    return std::make_unique<StaticDemand>(std::vector<double>{1.0});
  };
  FlashCrowdDemand::Spike bad;
  bad.app = AppId{0};
  bad.start = 10.0;
  bad.end = 5.0;
  EXPECT_THROW((FlashCrowdDemand{mk(), {bad}}), PreconditionError);
  EXPECT_THROW((FlashCrowdDemand{nullptr, {}}), PreconditionError);
}

TEST(RandomWalkDemand, DeterministicAndBounded) {
  RandomWalkDemand d{{1000.0}, 0.3, 60.0, 99};
  RandomWalkDemand d2{{1000.0}, 0.3, 60.0, 99};
  for (int i = 0; i < 50; ++i) {
    const double t = i * 60.0;
    EXPECT_DOUBLE_EQ(d.rps(AppId{0}, t), d2.rps(AppId{0}, t));
    EXPECT_GE(d.rps(AppId{0}, t), 100.0);   // clamp floor
    EXPECT_LE(d.rps(AppId{0}, t), 4000.0);  // clamp ceiling
  }
}

TEST(RandomWalkDemand, ActuallyVaries) {
  RandomWalkDemand d{{1000.0}, 0.3, 60.0, 99};
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double v = d.rps(AppId{0}, i * 60.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 50.0);
}

TEST(ZipfBaseRates, SumAndOrdering) {
  const auto rates = zipfBaseRates(100, 0.9, 1e6);
  EXPECT_NEAR(std::accumulate(rates.begin(), rates.end(), 0.0), 1e6, 1.0);
  EXPECT_GT(rates[0], rates[1]);
  EXPECT_GT(rates[1], rates[99]);
}

}  // namespace
}  // namespace mdc
