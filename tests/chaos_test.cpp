// Manager-tier fault tolerance (E16): fenced failover, crash-recoverable
// pod managers, cancellation of a dead manager's in-flight work, and the
// chaos-storm harness that composes manager crashes with infrastructure
// faults while WorldInvariants judges every epoch.
//
// The storm test is seeded; set MDC_CHAOS_SEED to replay a specific run
// (the CI chaos-soak job sweeps extra seeds this way).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mdc/core/epoch_report.hpp"
#include "mdc/ctrl/command_sender.hpp"
#include "mdc/ctrl/switch_agent.hpp"
#include "mdc/fault/chaos.hpp"
#include "mdc/obs/export.hpp"
#include "mdc/scenario/megadc.hpp"

namespace mdc {
namespace {

std::uint64_t chaosSeed() {
  if (const char* s = std::getenv("MDC_CHAOS_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 1009;
}

std::string joined(const std::vector<std::string>& violations) {
  std::string all;
  for (const std::string& v : violations) {
    all += "\n  - " + v;
  }
  return all;
}

// --- fencing (term) mechanics ---------------------------------------------

TEST(Chaos, AgentFencesStaleTerms) {
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  SwitchAgent agent{fleet, sw};
  std::vector<CommandAck> acks;
  const auto onAck = [&acks](const CommandAck& a) { acks.push_back(a); };

  const VipId vip{1};
  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = vip;
  cfg.app = AppId{0};
  cfg.seq = 0;
  cfg.term = 2;  // first contact from the term-2 leader
  agent.deliver(cfg, onAck);
  EXPECT_EQ(agent.term(), 2u);
  EXPECT_TRUE(fleet.at(sw).hasVip(vip));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks.back().status.ok());
  EXPECT_EQ(acks.back().term, 2u);

  // A command from the deposed term-1 leader: refused, never applied.
  SwitchCommand stale;
  stale.kind = CmdKind::AddRip;
  stale.vip = vip;
  stale.rip = RipEntry{RipId{3}, VmId{5}, VipId{}, 2.0};
  stale.seq = 1;
  stale.term = 1;
  agent.deliver(stale, onAck);
  EXPECT_EQ(fleet.at(sw).ripCount(), 0u);
  EXPECT_EQ(agent.staleTermRejections(), 1u);
  ASSERT_EQ(acks.size(), 2u);
  ASSERT_FALSE(acks.back().status.ok());
  EXPECT_EQ(acks.back().status.error().code, "stale_term");
  EXPECT_EQ(acks.back().term, 1u);  // echoed so the sender can drop it

  // A higher term opens a fresh sequence space: seq 0 is not deduped
  // against the old term's seq 0.
  SwitchCommand add;
  add.kind = CmdKind::AddRip;
  add.vip = vip;
  add.rip = RipEntry{RipId{3}, VmId{5}, VipId{}, 2.0};
  add.seq = 0;
  add.term = 3;
  agent.deliver(add, onAck);
  EXPECT_EQ(agent.term(), 3u);
  EXPECT_EQ(fleet.at(sw).ripCount(), 1u);
  EXPECT_TRUE(acks.back().status.ok());
  EXPECT_EQ(agent.duplicatesDropped(), 0u);
}

TEST(Chaos, CancelInflightFiresCancelledExactlyOnce) {
  Simulation sim;
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  ControlChannel channel{sim, 11};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 0.5;
  opt.maxAttempts = 0;  // would retry forever
  CommandSender sender{sim, channel, fleet, opt};
  channel.setPartitioned(sw, true);  // maroon everything in flight

  constexpr int kCmds = 3;
  std::vector<int> fired(kCmds, 0);
  std::vector<Status> outcomes(kCmds);
  for (int i = 0; i < kCmds; ++i) {
    SwitchCommand cfg;
    cfg.kind = CmdKind::ConfigureVip;
    cfg.vip = VipId{static_cast<VipId::value_type>(i + 1)};
    cfg.app = AppId{0};
    sender.send(sw, cfg, [&fired, &outcomes, i](Status s) {
      ++fired[static_cast<std::size_t>(i)];
      outcomes[static_cast<std::size_t>(i)] = std::move(s);
    });
  }
  sim.runUntil(2.0);
  ASSERT_EQ(sender.inflight(), static_cast<std::uint32_t>(kCmds));

  // The issuing manager dies: every completion settles with "cancelled",
  // and no retry timer survives to fire into the dead term.
  sender.cancelInflight();
  EXPECT_EQ(sender.inflight(), 0u);
  EXPECT_EQ(sender.cancelledCommands(), static_cast<std::uint64_t>(kCmds));
  for (int i = 0; i < kCmds; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], 1) << "command " << i;
    ASSERT_FALSE(outcomes[static_cast<std::size_t>(i)].ok());
    EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].error().code, "cancelled");
  }
  sim.runUntil(120.0);  // disarmed timers: nothing fires twice
  for (int i = 0; i < kCmds; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], 1) << "command " << i;
  }

  // The successor begins a higher term; its commands land under it.
  sender.beginTerm(2);
  EXPECT_EQ(sender.currentTerm(), 2u);
  channel.setPartitioned(sw, false);
  int ok = 0;
  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = VipId{9};
  cfg.app = AppId{0};
  sender.send(sw, cfg, [&ok](Status s) {
    ++ok;
    EXPECT_TRUE(s.ok());
  });
  sim.runUntil(130.0);
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(sender.agentOf(sw).term(), 2u);
  EXPECT_EQ(sender.maxAgentTerm(), 2u);
  EXPECT_TRUE(fleet.at(sw).hasVip(VipId{9}));
}

// --- pod-manager crash/restore --------------------------------------------

TEST(Chaos, PodManagerCrashRecoversFromCheckpoint) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(100.0);

  PodManager& pod = *dc.manager->pods().front();
  const PodId victim = pod.id();
  dc.faults->crashPodManager(victim, 105.0, /*repairAfter=*/20.0);

  dc.runUntil(112.0);  // crashed at 105, detected within 2x2s heartbeats
  EXPECT_FALSE(pod.online());
  EXPECT_EQ(pod.crashes(), 1u);
  EXPECT_TRUE(dc.health->isPodSuspect(victim));

  dc.runUntil(130.0);  // restarted at 125 with checkpoint recovery
  EXPECT_TRUE(pod.online());
  EXPECT_EQ(pod.restarts(), 1u);
  EXPECT_EQ(dc.manager->podRestarts(), 1u);

  // The suspect entry must clear once the pod reports back in — a leaked
  // suspect would freeze inter-pod moves against it forever.
  dc.runUntil(140.0);
  EXPECT_FALSE(dc.health->isPodSuspect(victim));

  // Recovered state is usable: demand through the pod keeps being served.
  dc.runUntil(200.0);
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
  EXPECT_EQ(r.podManagerRestarts, 1u);
}

// --- global-manager failover ----------------------------------------------

TEST(Chaos, LeaderCrashFailsOverUnderHigherTerm) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(100.0);
  ASSERT_EQ(dc.manager->term(), 1u);
  ASSERT_TRUE(dc.manager->leaderUp());
  ASSERT_EQ(dc.manager->aliveManagers(), 2u);

  dc.faults->crashGlobalManager(105.0, /*repairAfter=*/30.0);

  dc.runUntil(106.0);
  EXPECT_FALSE(dc.manager->leaderUp());
  EXPECT_FALSE(dc.manager->viprip().online());
  // A dead manager refuses new work instead of queueing into the void.
  int refused = 0;
  VipRipRequest req;
  req.op = VipRipOp::NewVip;
  req.app = dc.apps.all().front().id;
  req.done = [&refused](Status s) {
    ++refused;
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().code, "manager_down");
  };
  dc.manager->viprip().submit(std::move(req));
  EXPECT_EQ(refused, 1);

  // The standby waits out the lease (6s) and promotes under term 2.
  dc.runUntil(120.0);
  EXPECT_TRUE(dc.manager->leaderUp());
  EXPECT_TRUE(dc.manager->viprip().online());
  EXPECT_EQ(dc.manager->term(), 2u);
  EXPECT_EQ(dc.manager->failovers(), 1u);
  EXPECT_EQ(dc.manager->viprip().ctrlSender().currentTerm(), 2u);

  // The repair revives the dead instance as a standby, never as leader.
  dc.runUntil(140.0);
  EXPECT_EQ(dc.manager->aliveManagers(), 2u);
  EXPECT_EQ(dc.manager->term(), 2u);  // no second takeover

  // Post-failover the new leader converges the world: journal replay plus
  // one audit round re-derive everything the dead leader had in flight.
  dc.runUntil(240.0);
  const Reconciler& rec = dc.manager->reconciler();
  EXPECT_EQ(rec.divergenceLastRound(), 0u);
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
  EXPECT_EQ(r.managerTerm, 2u);
  EXPECT_TRUE(r.managerLeaderUp);
  EXPECT_EQ(r.managerAlive, 2u);
  EXPECT_EQ(r.managerFailovers, 1u);
  EXPECT_EQ(r.faultPlanSeed, dc.faults->seed());
  EXPECT_EQ(r.faultsInjected, 1u);
  EXPECT_EQ(r.faultRepairsApplied, 1u);
}

// --- the chaos storm -------------------------------------------------------

TEST(Chaos, StormHoldsInvariantsEveryEpochAndQuiescesExactlyOnce) {
  const std::uint64_t seed = chaosSeed();
  SCOPED_TRACE("MDC_CHAOS_SEED=" + std::to_string(seed));

  MegaDcConfig cfg = testScaleConfig();
  cfg.seed = seed;
  cfg.fault.seed = seed * 0x9e3779b97f4a7c15ull + 0xe16u;
  // A mildly lossy command channel underneath the storm, so manager
  // crashes compose with retransmits and late-landing commands.
  cfg.ctrlFaults.dropRate = 0.05;
  cfg.ctrlFaults.delaySeconds = 0.02;
  cfg.ctrlFaults.delayJitterSeconds = 0.05;
  MegaDc dc{cfg};
  dc.bootstrap();

  WorldInvariants inv{dc.topo, dc.apps,          dc.dns,          dc.fleet,
                      dc.hosts, *dc.manager,     dc.health.get()};

  // >= 200 epochs of composed storm at the 2s test epoch.
  const SimTime epoch = cfg.engine.epoch;
  const SimTime stormStart = dc.sim.now() + 10.0;
  const SimTime stormEnd = stormStart + 420.0;
  ChaosStorm::Options sopt;
  sopt.seed = seed;
  sopt.start = stormStart;
  sopt.end = stormEnd;
  sopt.waves = 8;
  sopt.maxSwitchCrashes = 1;
  sopt.maxServerCrashes = 2;
  sopt.maxLinkCuts = 1;
  sopt.maxPodOutages = 1;
  sopt.maxChannelPartitions = 1;
  sopt.maxPodManagerCrashes = 1;
  sopt.maxGlobalManagerCrashes = 1;
  sopt.minRepairSeconds = 5.0;
  sopt.maxRepairSeconds = 25.0;
  ChaosStorm storm{sopt};
  storm.schedule(*dc.faults);
  EXPECT_EQ(storm.waves().size(), 8u);
  // One leader crash is injected deterministically so the failover path
  // runs under every seed, whatever the storm happens to draw.
  dc.faults->crashGlobalManager(stormStart + 37.0, /*repairAfter=*/15.0);

  // Storm phase: the tolerant invariants must hold at every epoch.
  std::uint64_t epochsInStorm = 0;
  while (dc.sim.now() < stormEnd) {
    dc.runUntil(dc.sim.now() + epoch);
    ++epochsInStorm;
    const auto violations = inv.checkEpoch();
    ASSERT_TRUE(violations.empty())
        << "epoch invariants broken at t=" << dc.sim.now()
        << joined(violations);
  }
  EXPECT_GE(epochsInStorm, 200u);
  EXPECT_GT(dc.faults->faultsInjected(), 0u);
  EXPECT_GE(dc.manager->failovers(), 1u);
  EXPECT_GT(dc.manager->term(), 1u);

  // Quiesce phase: heal the channel, let repairs land and anti-entropy
  // converge; epoch invariants keep holding throughout.
  dc.manager->viprip().ctrlChannel().setFaults(ChannelFaults{});
  bool quiesced = false;
  std::vector<std::string> lastQuiesce;
  for (int round = 0; round < 60 && !quiesced; ++round) {
    for (int e = 0; e < 5; ++e) {
      dc.runUntil(dc.sim.now() + epoch);
      const auto violations = inv.checkEpoch();
      ASSERT_TRUE(violations.empty())
          << "epoch invariants broken during quiesce at t=" << dc.sim.now()
          << joined(violations);
    }
    lastQuiesce = inv.checkQuiesced();
    quiesced = lastQuiesce.empty();
  }
  EXPECT_TRUE(quiesced) << "world never quiesced:" << joined(lastQuiesce);

  // Failover stayed bounded: with a standby available, leaderless spells
  // are capped by lease TTL + watch period (8s = 4 epochs, plus slack).
  EXPECT_LE(inv.maxLeaderlessRun(), 6u);

  // Fencing held: no agent ever ran ahead of the leader's term, and every
  // stale-term command was refused, not applied.
  const CommandSender& sender = dc.manager->viprip().ctrlSender();
  EXPECT_LE(sender.maxAgentTerm(), sender.currentTerm());
  EXPECT_EQ(sender.currentTerm(), dc.manager->term());

  // Replayability: the epoch report carries the full replay handle.
  const EpochReport& r = dc.engine->latest();
  EXPECT_EQ(r.faultPlanSeed, cfg.fault.seed);
  EXPECT_EQ(r.faultsInjected, dc.faults->faultsInjected());
  EXPECT_EQ(r.managerTerm, dc.manager->term());
  EXPECT_GE(r.managerFailovers, 1u);
}

// --- acceptance: command storms (E18) ---------------------------------------

// A command storm floods the VIP/RIP admission queue with bulk weight
// updates and capacity work while an infrastructure storm rages.  The
// acceptance bar: overload sheds only the bulk/capacity classes — the
// critical repair class is never refused (WorldInvariants::checkAdmission
// judges that at every epoch) — and the queue drains to empty once the
// world quiesces.
TEST(Chaos, CommandStormShedsOnlyBulkAndQuiesces) {
  const std::uint64_t seed = chaosSeed();
  SCOPED_TRACE("MDC_CHAOS_SEED=" + std::to_string(seed));

  MegaDcConfig cfg = testScaleConfig();
  cfg.seed = seed;
  cfg.fault.seed = seed * 0x9e3779b97f4a7c15ull + 0xe18u;
  cfg.ctrlFaults.dropRate = 0.05;
  cfg.ctrlFaults.delaySeconds = 0.02;
  cfg.ctrlFaults.delayJitterSeconds = 0.05;
  // A tightly bounded queue, so the bursts drive real shedding decisions
  // instead of just deep backlogs.
  cfg.manager.viprip.admission.maxQueueDepth = 24;
  cfg.manager.viprip.admission.bulkShare = 0.5;
  cfg.manager.viprip.admission.capacityDeadlineSeconds = 30.0;
  MegaDc dc{cfg};
  dc.bootstrap();

  WorldInvariants inv{dc.topo, dc.apps,      dc.dns,          dc.fleet,
                      dc.hosts, *dc.manager, dc.health.get()};

  const SimTime epoch = cfg.engine.epoch;
  ChaosStorm::Options sopt;
  sopt.seed = seed;
  sopt.start = dc.sim.now() + 10.0;
  sopt.end = sopt.start + 420.0;
  sopt.waves = 8;
  sopt.maxSwitchCrashes = 1;
  sopt.maxServerCrashes = 2;
  sopt.maxLinkCuts = 1;
  sopt.maxPodOutages = 1;
  sopt.maxChannelPartitions = 1;
  sopt.maxPodManagerCrashes = 1;
  sopt.maxGlobalManagerCrashes = 1;
  sopt.maxCommandStorms = 2;
  sopt.stormBurst = 96;
  sopt.stormWindowSeconds = 4.0;
  sopt.minRepairSeconds = 5.0;
  sopt.maxRepairSeconds = 25.0;
  ChaosStorm storm{sopt};
  storm.schedule(*dc.faults);
  // One deterministic burst plus a leader crash, so the shed/refuse and
  // failover paths both run under every seed, whatever the storm draws.
  dc.faults->commandStorm(sopt.start + 25.0, /*burst=*/96,
                          /*windowSeconds=*/4.0);
  dc.faults->crashGlobalManager(sopt.start + 37.0, /*repairAfter=*/15.0);

  std::uint64_t epochsInStorm = 0;
  while (dc.sim.now() < sopt.end) {
    dc.runUntil(dc.sim.now() + epoch);
    ++epochsInStorm;
    const auto violations = inv.checkEpoch();
    ASSERT_TRUE(violations.empty())
        << "epoch invariants broken at t=" << dc.sim.now()
        << joined(violations);
  }
  EXPECT_GE(epochsInStorm, 200u);

  // Quiesce: heal the channel and let the backlog drain.
  dc.manager->viprip().ctrlChannel().setFaults(ChannelFaults{});
  bool quiesced = false;
  std::vector<std::string> lastQuiesce;
  for (int round = 0; round < 60 && !quiesced; ++round) {
    for (int e = 0; e < 5; ++e) {
      dc.runUntil(dc.sim.now() + epoch);
      const auto violations = inv.checkEpoch();
      ASSERT_TRUE(violations.empty())
          << "epoch invariants broken during quiesce at t=" << dc.sim.now()
          << joined(violations);
    }
    lastQuiesce = inv.checkQuiesced();
    quiesced = lastQuiesce.empty();
  }
  EXPECT_TRUE(quiesced) << "world never quiesced:" << joined(lastQuiesce);

  // The storm actually pushed commands through admission, the critical
  // class was never shed, and nothing is left stuck in the queue.
  const AdmissionController& adm = dc.manager->viprip().admission();
  EXPECT_GT(adm.rounds(), 0u);
  EXPECT_GT(adm.admitted(), 0u);
  EXPECT_EQ(adm.shedOf(AdmissionClass::Critical), 0u);
  EXPECT_EQ(adm.depth(), 0u);
  // The durable mirror the state hash covers saw the same traffic.  (It
  // counts committed rounds only, so it can trail the controller's
  // offer-time counters across a mid-flight leader crash — but it can
  // never lead them.)
  const VipRipManager::AdmissionTotals totals =
      dc.manager->viprip().admissionTotals();
  EXPECT_GT(totals.rounds, 0u);
  EXPECT_GT(totals.admitted, 0u);
  EXPECT_LE(totals.admitted, adm.admitted());
}

// --- acceptance: deterministic chaos replay (E17) ---------------------------

// The whole stack — demand, engine, fault plan, storm schedule, command
// retry jitter, durable-state recovery — derives from seeds, so running
// the same seeded storm twice must reproduce the final EpochReport down
// to the bit, asserted by its canonical-encoding hash.  This is the
// invariant that makes any chaos failure replayable from its seed.
TEST(Chaos, StormReplayProducesIdenticalEpochReportHash) {
  const std::uint64_t seed = chaosSeed();
  SCOPED_TRACE("MDC_CHAOS_SEED=" + std::to_string(seed));

  const auto finalReportHash = [seed] {
    MegaDcConfig cfg = testScaleConfig();
    cfg.seed = seed;
    cfg.fault.seed = seed * 0x9e3779b97f4a7c15ull + 0xe17u;
    cfg.ctrlFaults.dropRate = 0.05;
    cfg.ctrlFaults.delaySeconds = 0.02;
    cfg.ctrlFaults.delayJitterSeconds = 0.05;
    MegaDc dc{cfg};
    dc.bootstrap();

    ChaosStorm::Options sopt;
    sopt.seed = seed;
    sopt.start = dc.sim.now() + 10.0;
    sopt.end = sopt.start + 150.0;
    sopt.waves = 4;
    sopt.maxSwitchCrashes = 1;
    sopt.maxServerCrashes = 2;
    sopt.maxLinkCuts = 1;
    sopt.maxPodOutages = 1;
    sopt.maxChannelPartitions = 1;
    sopt.maxPodManagerCrashes = 1;
    sopt.maxGlobalManagerCrashes = 1;
    ChaosStorm storm{sopt};
    storm.schedule(*dc.faults);
    // A deterministic torn-write crash, so the recovery path itself is
    // inside the replayed schedule under every seed.
    dc.faults->tornJournalWrite(sopt.start + 41.0, /*repairAfter=*/15.0);

    dc.runUntil(sopt.end + 60.0);
    return hashEpochReport(dc.engine->latest());
  };

  const std::uint64_t first = finalReportHash();
  const std::uint64_t second = finalReportHash();
  EXPECT_EQ(first, second) << "same seed + same storm diverged";
}

// --- acceptance: causal tracing under a chaos storm ------------------------

// Every switch command submitted during a storm must leave a span tree in
// the JSONL trace that terminates in exactly one of {acked, cancelled,
// stale_term} — no span may end twice, dangle forever, or time out.
TEST(Chaos, StormTraceSpansTerminateExactlyOnce) {
  const std::uint64_t seed = chaosSeed();
  SCOPED_TRACE("MDC_CHAOS_SEED=" + std::to_string(seed));

  MegaDcConfig cfg = testScaleConfig();
  cfg.seed = seed;
  cfg.fault.seed = seed * 0x9e3779b97f4a7c15ull + 0x0b5u;
  cfg.ctrlFaults.dropRate = 0.05;
  cfg.ctrlFaults.delaySeconds = 0.02;
  cfg.ctrlFaults.delayJitterSeconds = 0.05;
  cfg.tracing.enabled = true;
  cfg.tracing.ringCapacity = 1u << 19;
  MegaDc dc{cfg};
  dc.bootstrap();

  ChaosStorm::Options sopt;
  sopt.seed = seed;
  sopt.start = dc.sim.now() + 10.0;
  sopt.end = sopt.start + 240.0;
  sopt.waves = 6;
  sopt.maxSwitchCrashes = 1;
  sopt.maxServerCrashes = 2;
  sopt.maxLinkCuts = 1;
  sopt.maxPodOutages = 1;
  // No channel partitions: a partition can outlast the retry budget and
  // end a span in cmd_timeout, which the acceptance set excludes.  (At a
  // 5% drop rate a timeout needs eight straight losses — negligible.)
  sopt.maxChannelPartitions = 0;
  sopt.maxPodManagerCrashes = 1;
  sopt.maxGlobalManagerCrashes = 1;
  ChaosStorm storm{sopt};
  storm.schedule(*dc.faults);
  // Deterministic leader crash so the fencing/cancellation paths appear
  // in the trace under every seed.
  dc.faults->crashGlobalManager(sopt.start + 37.0, /*repairAfter=*/15.0);

  dc.runUntil(sopt.end);
  // Drain: heal the channel and give the slowest retry backoff (capped
  // at 30s) room to land, so no span is still in flight when we judge.
  dc.manager->viprip().ctrlChannel().setFaults(ChannelFaults{});
  dc.runUntil(sopt.end + 120.0);

  const TraceRing& ring = dc.tracer->ring();
  ASSERT_EQ(ring.overwritten(), 0u) << "trace ring too small for storm";

  // The acceptance artifact: the storm's full JSONL trace.
  std::ostringstream jsonl;
  EXPECT_EQ(exportSpansJsonl(ring, jsonl), ring.size());
  EXPECT_NE(jsonl.str().find("\"hop\":\"cmd_acked\""), std::string::npos);

  const std::vector<TraceEvent> events = ring.snapshot();
  std::map<std::pair<TraceId, SpanId>, std::vector<const TraceEvent*>> spans;
  for (const TraceEvent& e : events) {
    spans[{e.trace, e.span}].push_back(&e);
  }
  std::uint64_t commands = 0;
  std::uint64_t acked = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t stale = 0;
  for (const auto& [key, evs] : spans) {
    const bool isCommand =
        std::any_of(evs.begin(), evs.end(), [](const TraceEvent* e) {
          return e->hop == HopKind::CmdSend;
        });
    if (!isCommand) continue;  // request root spans / reconcile adoptions
    ++commands;
    std::vector<HopKind> terminals;
    for (const TraceEvent* e : evs) {
      if (isCommandTerminal(e->hop)) terminals.push_back(e->hop);
    }
    ASSERT_EQ(terminals.size(), 1u)
        << "trace " << key.first << " span " << key.second << " ended "
        << terminals.size() << " times";
    switch (terminals.front()) {
      case HopKind::CmdAcked: ++acked; break;
      case HopKind::CmdCancelled: ++cancelled; break;
      case HopKind::CmdStaleTerm: ++stale; break;
      default:
        FAIL() << "trace " << key.first << " span " << key.second
               << " ended in " << toString(terminals.front());
    }
  }
  EXPECT_EQ(commands, acked + cancelled + stale);
  EXPECT_GT(commands, 100u);
  EXPECT_GT(acked, 0u);
}

// --- acceptance: session storms (E19) ---------------------------------------

// The session data plane rides through a chaos storm: switches crash while
// millions-scale per-connection state lives on their shards, a quiescent
// drain is interrupted by its source switch crashing (the VIP re-hosts
// mid-drain), and WorldInvariants judges session conservation — every
// arrival in exactly one of {active, completed, broken, rejected}, all
// cumulative counters monotone — at every epoch.  Surviving sessions must
// keep their RIP (connection affinity, §IV-B): a session's backend is
// chosen once, at setup, and never silently rebound.
TEST(Chaos, SessionStormConservesSessionsAndKeepsRipStickiness) {
  const std::uint64_t seed = chaosSeed();
  SCOPED_TRACE("MDC_CHAOS_SEED=" + std::to_string(seed));

  MegaDcConfig cfg = testScaleConfig();
  cfg.seed = seed;
  cfg.fault.seed = seed * 0x9e3779b97f4a7c15ull + 0xe19u;
  cfg.ctrlFaults.dropRate = 0.05;
  cfg.ctrlFaults.delaySeconds = 0.02;
  cfg.ctrlFaults.delayJitterSeconds = 0.05;
  cfg.enableSessionEngine = true;
  cfg.session.sessionsPerSecondPerKrps = 2.0;
  cfg.session.meanSessionSeconds = 20.0;
  MegaDc dc{cfg};
  dc.bootstrap();
  ASSERT_NE(dc.sessions, nullptr);

  WorldInvariants inv{dc.topo, dc.apps,      dc.dns,         dc.fleet,
                      dc.hosts, *dc.manager, dc.health.get()};
  inv.attachSessionProbe([&dc]() -> std::optional<SessionPlaneSample> {
    if (dc.sessions == nullptr) return std::nullopt;
    SessionPlaneSample s;
    s.arrivals = dc.sessions->totalArrivals();
    s.active = dc.sessions->activeSessions();
    s.completed = dc.sessions->completedSessions();
    s.broken = dc.sessions->brokenSessions();
    s.rejected = dc.sessions->rejectedSessions();
    return s;
  });

  const SimTime epoch = cfg.engine.epoch;
  const SimTime stormStart = dc.sim.now() + 10.0;
  const SimTime stormEnd = stormStart + 240.0;
  ChaosStorm::Options sopt;
  sopt.seed = seed;
  sopt.start = stormStart;
  sopt.end = stormEnd;
  sopt.waves = 6;
  sopt.maxSwitchCrashes = 1;
  sopt.maxServerCrashes = 2;
  sopt.maxLinkCuts = 1;
  sopt.maxPodOutages = 1;
  sopt.maxChannelPartitions = 1;
  sopt.maxPodManagerCrashes = 1;
  sopt.maxGlobalManagerCrashes = 1;
  sopt.minRepairSeconds = 5.0;
  sopt.maxRepairSeconds = 20.0;
  ChaosStorm storm{sopt};
  storm.schedule(*dc.faults);

  // Let the plane fill, then snapshot every live session's RIP binding.
  dc.runUntil(stormStart);
  ASSERT_GT(dc.sessions->activeSessions(), 0u);
  std::map<std::uint64_t, std::uint32_t> pinned;
  for (std::uint32_t s = 0; s < dc.fleet.size(); ++s) {
    dc.sessions->shardOf(SwitchId{s}).forEach(
        [&pinned](std::uint64_t id, AppId, VipId, RipId rip, std::uint64_t) {
          pinned[id] = rip.value();
        });
  }
  ASSERT_FALSE(pinned.empty());

  // A deterministic mid-storm drain whose source switch then crashes: the
  // VIP re-hosts underneath the drain, which must abort (not complete,
  // not wedge) while the invariants keep holding.
  VipId drainVip{};
  SwitchId drainFrom{}, drainTo{};
  bool picked = false;
  for (const auto& app : dc.apps.all()) {
    for (const VipWeight& vw : dc.dns.vips(app.id)) {
      const auto owner = dc.fleet.ownerOf(vw.vip);
      if (!owner.has_value() || !dc.fleet.isUp(*owner)) continue;
      for (std::uint32_t s = 0; s < dc.fleet.size() && !picked; ++s) {
        if (SwitchId{s} != *owner && dc.fleet.isUp(SwitchId{s})) {
          drainVip = vw.vip;
          drainFrom = *owner;
          drainTo = SwitchId{s};
          picked = true;
        }
      }
      if (picked) break;
    }
    if (picked) break;
  }
  ASSERT_TRUE(picked);
  ASSERT_TRUE(dc.sessions->beginDrain(drainVip, drainTo).ok());
  dc.faults->crashSwitch(drainFrom, stormStart + 3.0 * epoch,
                         /*repairAfter=*/15.0);

  // Storm phase: epoch invariants (structural + leadership + session
  // conservation) hold at every epoch; RIP stickiness holds for every
  // pinned session still alive, wherever its VIP lives now.
  while (dc.sim.now() < stormEnd) {
    dc.runUntil(dc.sim.now() + epoch);
    const auto violations = inv.checkEpoch();
    ASSERT_TRUE(violations.empty())
        << "epoch invariants broken at t=" << dc.sim.now()
        << joined(violations);
    for (std::uint32_t s = 0; s < dc.fleet.size(); ++s) {
      dc.sessions->shardOf(SwitchId{s}).forEach(
          [&pinned](std::uint64_t id, AppId, VipId, RipId rip,
                    std::uint64_t) {
            const auto it = pinned.find(id);
            if (it != pinned.end()) {
              ASSERT_EQ(it->second, rip.value())
                  << "session " << id << " was rebound to another RIP";
            }
          });
    }
  }

  // The storm actually hit the session plane.
  EXPECT_GT(dc.sessions->totalArrivals(), 0u);
  EXPECT_GT(dc.sessions->brokenSessions(), 0u);
  EXPECT_GE(dc.sessions->drainsCompleted() + dc.sessions->drainsAborted(), 1u);
  EXPECT_FALSE(dc.sessions->draining(drainVip));

  // Quiesce: heal the channel, let repairs land; conservation and the
  // strict world invariants both converge.
  dc.manager->viprip().ctrlChannel().setFaults(ChannelFaults{});
  bool quiesced = false;
  std::vector<std::string> lastQuiesce;
  for (int round = 0; round < 60 && !quiesced; ++round) {
    for (int e = 0; e < 5; ++e) {
      dc.runUntil(dc.sim.now() + epoch);
      const auto violations = inv.checkEpoch();
      ASSERT_TRUE(violations.empty())
          << "epoch invariants broken during quiesce at t=" << dc.sim.now()
          << joined(violations);
    }
    lastQuiesce = inv.checkQuiesced();
    quiesced = lastQuiesce.empty();
  }
  EXPECT_TRUE(quiesced) << "world never quiesced:" << joined(lastQuiesce);
  EXPECT_EQ(dc.sessions->totalArrivals(),
            dc.sessions->activeSessions() + dc.sessions->completedSessions() +
                dc.sessions->brokenSessions() +
                dc.sessions->rejectedSessions());

  // Reports carry the session plane for replay comparison.
  const EpochReport& r = dc.engine->latest();
  EXPECT_EQ(r.sessionArrivals, dc.sessions->totalArrivals());
  EXPECT_EQ(r.sessionBroken, dc.sessions->brokenSessions());
}

}  // namespace
}  // namespace mdc
