// Unit tests for the LB switch model and the switch fleet.
#include <gtest/gtest.h>

#include <cmath>

#include "mdc/lb/lb_switch.hpp"
#include "mdc/lb/switch_fleet.hpp"

namespace mdc {
namespace {

constexpr VipId kVip{10};
constexpr AppId kApp{0};

SwitchLimits tinyLimits() {
  SwitchLimits lim;
  lim.maxVips = 2;
  lim.maxRips = 4;
  lim.capacityGbps = 4.0;
  lim.maxConnections = 3;
  return lim;
}

RipEntry vmRip(std::uint32_t rip, std::uint32_t vm, double w = 1.0) {
  RipEntry e;
  e.rip = RipId{rip};
  e.vm = VmId{vm};
  e.weight = w;
  return e;
}

TEST(LbSwitch, ConfigureAndFindVip) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  EXPECT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_NE(sw.findVip(kVip), nullptr);
  EXPECT_EQ(sw.findVip(kVip)->app, kApp);
  EXPECT_EQ(sw.vipCount(), 1u);
  EXPECT_EQ(sw.spareVips(), 1u);
}

TEST(LbSwitch, VipTableLimitEnforced) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  EXPECT_TRUE(sw.configureVip(VipId{1}, kApp).ok());
  EXPECT_TRUE(sw.configureVip(VipId{2}, kApp).ok());
  const Status s = sw.configureVip(VipId{3}, kApp);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "vip_table_full");
}

TEST(LbSwitch, DuplicateVipRejected) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  EXPECT_TRUE(sw.configureVip(kVip, kApp).ok());
  EXPECT_EQ(sw.configureVip(kVip, kApp).error().code, "vip_exists");
}

TEST(LbSwitch, RipTableLimitSharedAcrossVips) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(VipId{1}, kApp).ok());
  ASSERT_TRUE(sw.configureVip(VipId{2}, kApp).ok());
  EXPECT_TRUE(sw.addRip(VipId{1}, vmRip(0, 0)).ok());
  EXPECT_TRUE(sw.addRip(VipId{1}, vmRip(1, 1)).ok());
  EXPECT_TRUE(sw.addRip(VipId{2}, vmRip(2, 2)).ok());
  EXPECT_TRUE(sw.addRip(VipId{2}, vmRip(3, 3)).ok());
  EXPECT_EQ(sw.addRip(VipId{1}, vmRip(4, 4)).error().code, "rip_table_full");
  EXPECT_EQ(sw.ripCount(), 4u);
  EXPECT_EQ(sw.spareRips(), 0u);
}

TEST(LbSwitch, RemoveVipFreesRips) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0)).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(1, 1)).ok());
  EXPECT_TRUE(sw.removeVip(kVip).ok());
  EXPECT_EQ(sw.ripCount(), 0u);
  EXPECT_EQ(sw.vipCount(), 0u);
  EXPECT_FALSE(sw.hasVip(kVip));
}

TEST(LbSwitch, RemoveVipWithSwapAndPopKeepsIndexCoherent) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(VipId{1}, kApp).ok());
  ASSERT_TRUE(sw.configureVip(VipId{2}, AppId{1}).ok());
  ASSERT_TRUE(sw.removeVip(VipId{1}).ok());
  ASSERT_NE(sw.findVip(VipId{2}), nullptr);
  EXPECT_EQ(sw.findVip(VipId{2})->app, AppId{1});
}

TEST(LbSwitch, RipOperations) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0, 2.0)).ok());
  EXPECT_EQ(sw.addRip(kVip, vmRip(0, 1)).error().code, "rip_exists");
  EXPECT_TRUE(sw.setRipWeight(kVip, RipId{0}, 5.0).ok());
  EXPECT_DOUBLE_EQ(sw.findVip(kVip)->findRip(RipId{0})->weight, 5.0);
  EXPECT_EQ(sw.setRipWeight(kVip, RipId{9}, 1.0).error().code, "rip_unknown");
  EXPECT_EQ(sw.setRipWeight(kVip, RipId{0}, -1.0).error().code, "bad_weight");
  EXPECT_TRUE(sw.removeRip(kVip, RipId{0}).ok());
  EXPECT_EQ(sw.removeRip(kVip, RipId{0}).error().code, "rip_unknown");
}

TEST(LbSwitch, MvipRipTargetsVip) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  RipEntry e;
  e.rip = RipId{0};
  e.mvip = VipId{77};
  ASSERT_TRUE(sw.addRip(kVip, e).ok());
  EXPECT_FALSE(sw.findVip(kVip)->findRip(RipId{0})->targetsVm());
}

TEST(LbSwitch, RipMustTargetExactlyOneKind) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  RipEntry both;
  both.rip = RipId{0};
  both.vm = VmId{1};
  both.mvip = VipId{2};
  EXPECT_THROW((void)sw.addRip(kVip, both), PreconditionError);
  RipEntry neither;
  neither.rip = RipId{1};
  EXPECT_THROW((void)sw.addRip(kVip, neither), PreconditionError);
}

TEST(LbSwitch, ConnectionTrackingPinsRip) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0)).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(1, 1)).ok());
  Rng rng{5};
  const auto r = sw.openConnection(ConnId{0}, kVip, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sw.connectionRip(ConnId{0}).value(), r.value());
  EXPECT_EQ(sw.activeConnections(), 1u);
  EXPECT_EQ(sw.activeConnections(kVip), 1u);
  sw.closeConnection(ConnId{0});
  EXPECT_EQ(sw.activeConnections(), 0u);
  EXPECT_FALSE(sw.connectionRip(ConnId{0}).has_value());
}

TEST(LbSwitch, ConnectionLimitEnforced) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};  // max 3 connections
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0)).ok());
  Rng rng{5};
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(sw.openConnection(ConnId{c}, kVip, rng).ok());
  }
  EXPECT_EQ(sw.openConnection(ConnId{3}, kVip, rng).error().code,
            "conn_table_full");
}

TEST(LbSwitch, WeightedRipSelection) {
  SwitchLimits lim = tinyLimits();
  lim.maxConnections = 100000;
  LbSwitch sw{SwitchId{0}, lim};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0, 1.0)).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(1, 1, 3.0)).ok());
  Rng rng{5};
  int hits1 = 0;
  const int n = 10000;
  for (int c = 0; c < n; ++c) {
    const auto r = sw.openConnection(ConnId{static_cast<std::uint32_t>(c)},
                                     kVip, rng);
    if (r.value() == RipId{1}) ++hits1;
  }
  EXPECT_NEAR(static_cast<double>(hits1) / n, 0.75, 0.02);
}

TEST(LbSwitch, RemoveVipWithConnectionsRefused) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0)).ok());
  Rng rng{5};
  ASSERT_TRUE(sw.openConnection(ConnId{0}, kVip, rng).ok());
  EXPECT_EQ(sw.removeVip(kVip).error().code, "vip_has_connections");
  EXPECT_EQ(sw.dropConnections(kVip), 1u);
  EXPECT_TRUE(sw.removeVip(kVip).ok());
}

TEST(LbSwitch, OpenOnUnknownVipOrNoRips) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  Rng rng{5};
  EXPECT_EQ(sw.openConnection(ConnId{0}, kVip, rng).error().code,
            "vip_unknown");
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  EXPECT_EQ(sw.openConnection(ConnId{0}, kVip, rng).error().code, "no_rips");
}

TEST(LbSwitch, ReconfigOpsCounted) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  ASSERT_TRUE(sw.configureVip(kVip, kApp).ok());
  ASSERT_TRUE(sw.addRip(kVip, vmRip(0, 0)).ok());
  ASSERT_TRUE(sw.setRipWeight(kVip, RipId{0}, 2.0).ok());
  ASSERT_TRUE(sw.removeRip(kVip, RipId{0}).ok());
  ASSERT_TRUE(sw.removeVip(kVip).ok());
  EXPECT_EQ(sw.reconfigOps(), 5u);
}

TEST(LbSwitch, UtilizationGauge) {
  LbSwitch sw{SwitchId{0}, tinyLimits()};
  sw.setOfferedGbps(2.0);
  EXPECT_DOUBLE_EQ(sw.utilization(), 0.5);
}

// ------------------------------------------------------------- fleet --

TEST(SwitchFleet, OwnershipIndex) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  EXPECT_EQ(fleet.size(), 2u);
  EXPECT_FALSE(fleet.ownerOf(kVip).has_value());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  EXPECT_EQ(fleet.ownerOf(kVip).value(), a);
  EXPECT_EQ(fleet.configureVip(b, kVip, kApp).error().code,
            "vip_owned_elsewhere");
}

TEST(SwitchFleet, RemoveVipClearsOwnership) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  ASSERT_TRUE(fleet.removeVip(kVip).ok());
  EXPECT_FALSE(fleet.ownerOf(kVip).has_value());
  EXPECT_EQ(fleet.removeVip(kVip).error().code, "vip_unowned");
}

TEST(SwitchFleet, TransferMovesRipsAndWeights) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  ASSERT_TRUE(fleet.addRip(kVip, vmRip(0, 0, 2.5)).ok());
  ASSERT_TRUE(fleet.addRip(kVip, vmRip(1, 1, 1.5)).ok());

  ASSERT_TRUE(fleet.transferVip(kVip, b).ok());
  EXPECT_EQ(fleet.ownerOf(kVip).value(), b);
  EXPECT_FALSE(fleet.at(a).hasVip(kVip));
  const VipEntry* e = fleet.at(b).findVip(kVip);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->rips.size(), 2u);
  EXPECT_DOUBLE_EQ(e->findRip(RipId{0})->weight, 2.5);
  EXPECT_EQ(fleet.vipTransfers(), 1u);
}

TEST(SwitchFleet, TransferRefusedWhileInUse) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  ASSERT_TRUE(fleet.addRip(kVip, vmRip(0, 0)).ok());
  Rng rng{5};
  ASSERT_TRUE(fleet.at(a).openConnection(ConnId{0}, kVip, rng).ok());

  EXPECT_EQ(fleet.transferVip(kVip, b).error().code, "vip_in_use");
  EXPECT_EQ(fleet.ownerOf(kVip).value(), a);

  // Forced transfer drops the connection and counts the violation.
  ASSERT_TRUE(fleet.transferVip(kVip, b, /*force=*/true).ok());
  EXPECT_EQ(fleet.droppedConnections(), 1u);
  EXPECT_EQ(fleet.ownerOf(kVip).value(), b);
}

TEST(SwitchFleet, TransferChecksDestinationCapacity) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  // Fill b's VIP table.
  ASSERT_TRUE(fleet.configureVip(b, VipId{20}, kApp).ok());
  ASSERT_TRUE(fleet.configureVip(b, VipId{21}, kApp).ok());
  EXPECT_EQ(fleet.transferVip(kVip, b).error().code, "vip_table_full");
  EXPECT_EQ(fleet.ownerOf(kVip).value(), a);  // unchanged on failure
}

TEST(SwitchFleet, TransferChecksDestinationRipCapacity) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  ASSERT_TRUE(fleet.addRip(kVip, vmRip(0, 0)).ok());
  ASSERT_TRUE(fleet.addRip(kVip, vmRip(1, 1)).ok());
  // b has VIP space but only 1 of the 2 needed RIP slots free.
  ASSERT_TRUE(fleet.configureVip(b, VipId{20}, kApp).ok());
  ASSERT_TRUE(fleet.addRip(VipId{20}, vmRip(2, 2)).ok());
  ASSERT_TRUE(fleet.addRip(VipId{20}, vmRip(3, 3)).ok());
  ASSERT_TRUE(fleet.addRip(VipId{20}, vmRip(4, 4)).ok());
  EXPECT_EQ(fleet.transferVip(kVip, b).error().code, "rip_table_full");
  EXPECT_EQ(fleet.ownerOf(kVip).value(), a);  // unchanged on failure
  // The source still serves: its table was not touched.
  EXPECT_EQ(fleet.at(a).ripCount(), 2u);
}

TEST(SwitchFleet, TransferToCrashedSwitchRefused) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  fleet.crashSwitch(b, 1.0);
  EXPECT_EQ(fleet.transferVip(kVip, b).error().code, "switch_down");
  EXPECT_EQ(fleet.ownerOf(kVip).value(), a);
}

TEST(SwitchFleet, CrashOrphansVipsAndSeversConnections) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  ASSERT_TRUE(fleet.configureVip(a, VipId{11}, AppId{1}).ok());
  ASSERT_TRUE(fleet.addRip(kVip, vmRip(0, 0, 2.5)).ok());
  Rng rng{5};
  ASSERT_TRUE(fleet.at(a).openConnection(ConnId{0}, kVip, rng).ok());

  EXPECT_EQ(fleet.crashSwitch(a, 42.0), 2u);
  EXPECT_FALSE(fleet.isUp(a));
  EXPECT_EQ(fleet.upCount(), 0u);
  EXPECT_EQ(fleet.switchCrashes(), 1u);
  EXPECT_EQ(fleet.droppedConnections(), 1u);
  EXPECT_FALSE(fleet.ownerOf(kVip).has_value());  // ownership released
  EXPECT_EQ(fleet.pendingOrphans(), 2u);

  // Orphans carry the last-known configuration for re-placement.
  auto orphans = fleet.takeOrphans(a);
  ASSERT_EQ(orphans.size(), 2u);
  const auto& o = orphans[0].vip == kVip ? orphans[0] : orphans[1];
  EXPECT_EQ(o.app, kApp);
  EXPECT_DOUBLE_EQ(o.orphanedAt, 42.0);
  ASSERT_EQ(o.rips.size(), 1u);
  EXPECT_DOUBLE_EQ(o.rips[0].weight, 2.5);
  EXPECT_EQ(fleet.pendingOrphans(), 0u);  // surrendered exactly once

  // A crashed switch refuses operations until it reboots, then comes
  // back with empty tables.
  EXPECT_EQ(fleet.configureVip(a, VipId{12}, kApp).error().code,
            "switch_down");
  fleet.recoverSwitch(a);
  EXPECT_TRUE(fleet.isUp(a));
  EXPECT_EQ(fleet.at(a).vipCount(), 0u);
  EXPECT_TRUE(fleet.configureVip(a, VipId{12}, kApp).ok());
}

TEST(SwitchFleet, TransferToSameSwitchRejected) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, kVip, kApp).ok());
  EXPECT_EQ(fleet.transferVip(kVip, a).error().code, "same_switch");
}

TEST(SwitchFleet, FleetWideAccounting) {
  SwitchFleet fleet;
  const SwitchId a = fleet.addSwitch(tinyLimits());
  const SwitchId b = fleet.addSwitch(tinyLimits());
  ASSERT_TRUE(fleet.configureVip(a, VipId{1}, kApp).ok());
  ASSERT_TRUE(fleet.configureVip(b, VipId{2}, kApp).ok());
  ASSERT_TRUE(fleet.addRip(VipId{1}, vmRip(0, 0)).ok());
  EXPECT_EQ(fleet.totalVips(), 2u);
  EXPECT_EQ(fleet.totalRips(), 1u);

  fleet.at(a).setOfferedGbps(1.0);
  fleet.at(b).setOfferedGbps(3.0);
  const auto offered = fleet.offeredGbps();
  EXPECT_DOUBLE_EQ(offered[0], 1.0);
  EXPECT_DOUBLE_EQ(offered[1], 3.0);

  int visited = 0;
  fleet.forEach([&](const LbSwitch&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

TEST(SwitchFleet, RipOpsOnUnownedVip) {
  SwitchFleet fleet;
  fleet.addSwitch(tinyLimits());
  EXPECT_EQ(fleet.addRip(kVip, vmRip(0, 0)).error().code, "vip_unowned");
  EXPECT_EQ(fleet.removeRip(kVip, RipId{0}).error().code, "vip_unowned");
  EXPECT_EQ(fleet.setRipWeight(kVip, RipId{0}, 1.0).error().code,
            "vip_unowned");
  EXPECT_EQ(fleet.findVip(kVip), nullptr);
}

}  // namespace
}  // namespace mdc
