// Durable deterministic state machine (E17): checksummed changelog,
// whole-DC snapshots with write-then-swap, corruption-tolerant recovery,
// and the determinism contract "same snapshot + same tail => identical
// state hash" — exercised at the codec/changelog/snapshot layer, with a
// toy automaton under randomized kill points, and end-to-end through the
// VipRipManager's journal.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mdc/core/epoch_report.hpp"
#include "mdc/ctrl/command_sender.hpp"
#include "mdc/ctrl/intent.hpp"
#include "mdc/scenario/megadc.hpp"
#include "mdc/sim/rng.hpp"
#include "mdc/state/changelog.hpp"
#include "mdc/state/codec.hpp"
#include "mdc/state/snapshot.hpp"
#include "mdc/state/state_machine.hpp"

namespace mdc {
namespace {

using state::ByteReader;
using state::ByteWriter;
using state::Changelog;
using state::DurableStateMachine;
using state::SnapshotImage;
using state::SnapshotMeta;
using state::SnapshotStore;

// --- codec ----------------------------------------------------------------

TEST(StateCodec, RoundtripsEveryTypeBitIdentically) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-0.0);
  w.f64(3.141592653589793);
  w.b(true);
  w.str("vip/rip");
  w.id(VipId{42});
  w.id(VipId{});  // invalid sentinel must roundtrip too

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  const double z = r.f64();
  EXPECT_EQ(z, 0.0);
  EXPECT_TRUE(std::signbit(z));
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.str(), "vip/rip");
  EXPECT_EQ(r.id<VipId>(), VipId{42});
  EXPECT_FALSE(r.id<VipId>().valid());
  EXPECT_TRUE(r.exhausted());
}

TEST(StateCodec, ReaderFailsSoftPastEnd) {
  ByteWriter w;
  w.u32(7);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // past the end: zero, not UB
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // sticky failure
  EXPECT_FALSE(r.exhausted());
}

TEST(StateCodec, Crc32MatchesKnownVector) {
  // CRC-32("123456789") is the classic check value.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(state::crc32(bytes), 0xcbf43926u);
}

// --- changelog ------------------------------------------------------------

std::vector<std::uint8_t> payload(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return w.take();
}

TEST(StateChangelog, AppendReplayPreservesRecordsAndIndices) {
  Changelog log;
  EXPECT_EQ(log.append(payload(10)), 0u);
  EXPECT_EQ(log.append(payload(11)), 1u);
  EXPECT_EQ(log.append(payload(12)), 2u);

  const auto replay = log.replay();
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.firstIndex, 0u);
  EXPECT_FALSE(replay.truncatedTail);
  EXPECT_EQ(replay.trailingBytes, 0u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ByteReader r{replay.records[i]};
    EXPECT_EQ(r.u64(), 10u + i);
  }
}

TEST(StateChangelog, TornTailIsDetectedAndTruncated) {
  Changelog log;
  for (std::uint64_t i = 0; i < 5; ++i) log.append(payload(i));
  ASSERT_TRUE(log.tearTail(/*entropy=*/3));

  // Replay trusts the bytes: the torn frame is cut off, not parsed.
  const auto replay = log.replay();
  EXPECT_EQ(replay.records.size(), 4u);
  EXPECT_TRUE(replay.truncatedTail);
  EXPECT_GT(replay.trailingBytes, 0u);

  // Bookkeeping still claims 5 until recovery resyncs it.
  EXPECT_EQ(log.size(), 5u);
  const std::uint64_t cut = log.truncateToValidPrefix();
  EXPECT_GT(cut, 0u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.endIndex(), 4u);

  // Post-truncation appends land after the good prefix.
  EXPECT_EQ(log.append(payload(99)), 4u);
  EXPECT_EQ(log.replay().records.size(), 5u);
}

TEST(StateChangelog, CorruptRecordStopsReplayAtValidPrefix) {
  Changelog log;
  for (std::uint64_t i = 0; i < 4; ++i) log.append(payload(i));
  ASSERT_TRUE(log.corruptTail(/*entropy=*/0x51u));

  const auto replay = log.replay();
  EXPECT_EQ(replay.records.size(), 3u);
  EXPECT_TRUE(replay.truncatedTail);

  log.truncateToValidPrefix();
  EXPECT_EQ(log.size(), 3u);
}

TEST(StateChangelog, CompactionPreservesGlobalIndices) {
  Changelog log;
  for (std::uint64_t i = 0; i < 10; ++i) log.append(payload(i));
  EXPECT_EQ(log.compactTo(6), 6u);
  EXPECT_EQ(log.baseIndex(), 6u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.compactedRecords(), 6u);

  const auto replay = log.replay();
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.firstIndex, 6u);
  ByteReader r{replay.records.front()};
  EXPECT_EQ(r.u64(), 6u);

  // New records keep counting from the global end.
  EXPECT_EQ(log.append(payload(10)), 10u);
}

// --- snapshot store -------------------------------------------------------

SnapshotMeta meta(std::uint64_t index, std::uint64_t term, double at,
                  std::span<const std::uint8_t> det) {
  return SnapshotMeta{index, term, at, state::fnv1a64(det)};
}

TEST(StateSnapshot, InstallLoadRoundtripsSections) {
  SnapshotStore store{SnapshotStore::Options{2}};
  const auto det = payload(7);
  const auto adv = payload(8);
  store.install(meta(12, 3, 36.0, det), det, adv);

  std::uint64_t rejected = 0;
  const auto images = store.loadAllValid(&rejected);
  ASSERT_EQ(images.size(), 1u);
  EXPECT_EQ(rejected, 0u);
  EXPECT_EQ(images[0].meta.index, 12u);
  EXPECT_EQ(images[0].meta.term, 3u);
  EXPECT_EQ(images[0].meta.takenAt, 36.0);
  EXPECT_EQ(images[0].deterministic, det);
  EXPECT_EQ(images[0].advisory, adv);
}

TEST(StateSnapshot, TornWritePublishesInvalidImageAndOlderSurvives) {
  SnapshotStore store{SnapshotStore::Options{2}};
  const auto det1 = payload(1);
  store.install(meta(5, 1, 10.0, det1), det1, {});

  store.armTornWrite();
  const auto det2 = payload(2);
  store.install(meta(9, 1, 20.0, det2), det2, {});
  EXPECT_FALSE(store.tornWriteArmed());  // one-shot
  EXPECT_EQ(store.count(), 2u);

  std::uint64_t rejected = 0;
  const auto images = store.loadAllValid(&rejected);
  ASSERT_EQ(images.size(), 1u);  // torn image dropped, fallback intact
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(images[0].meta.index, 5u);
}

TEST(StateSnapshot, CorruptionIsRejectedOnLoad) {
  SnapshotStore store{SnapshotStore::Options{2}};
  const auto det = payload(1);
  store.install(meta(5, 1, 10.0, det), det, {});
  ASSERT_TRUE(store.corruptLatest(/*entropy=*/0xf00du));

  std::uint64_t rejected = 0;
  EXPECT_TRUE(store.loadAllValid(&rejected).empty());
  EXPECT_EQ(rejected, 1u);
}

TEST(StateSnapshot, RetentionNeverPrunesLastValidFallback) {
  SnapshotStore store{SnapshotStore::Options{1}};
  const auto det1 = payload(1);
  store.install(meta(1, 1, 1.0, det1), det1, {});
  // Two consecutive torn installs: with keep=1, naive pruning would
  // rotate the only valid image out.  Retention counts valid images.
  store.armTornWrite();
  const auto det2 = payload(2);
  store.install(meta(2, 1, 2.0, det2), det2, {});
  store.armTornWrite();
  const auto det3 = payload(3);
  store.install(meta(3, 1, 3.0, det3), det3, {});

  const auto images = store.loadAllValid();
  ASSERT_EQ(images.size(), 1u);
  EXPECT_EQ(images[0].meta.index, 1u);

  // A new valid install finally displaces the old fallback.
  const auto det4 = payload(4);
  store.install(meta(4, 1, 4.0, det4), det4, {});
  const auto after = store.loadAllValid();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].meta.index, 4u);
}

// --- the machine under randomized kill points -----------------------------

// A toy deterministic automaton: the state is an order-sensitive digest
// of every applied record.  Its hooks mirror exactly what VipRipManager
// does — serialize/install/reset/apply — so the kill-point schedule can
// hammer the generic recovery policy cheaply.
struct ToyAutomaton {
  std::uint64_t acc = 0;
  std::uint64_t applied = 0;

  void apply(std::uint64_t v) {
    acc = acc * 6364136223846793005ull + v;
    ++applied;
  }
  void serialize(ByteWriter& w) const {
    w.u64(acc);
    w.u64(applied);
  }
  [[nodiscard]] std::uint64_t hash() const {
    ByteWriter w;
    serialize(w);
    return state::fnv1a64(w.bytes());
  }
};

DurableStateMachine::Hooks toyHooks(ToyAutomaton& toy) {
  DurableStateMachine::Hooks hooks;
  hooks.buildDeterministic = [&toy](ByteWriter& w) { toy.serialize(w); };
  hooks.installDeterministic = [&toy](ByteReader& r) {
    toy.acc = r.u64();
    toy.applied = r.u64();
    return r.ok();
  };
  hooks.reset = [&toy] { toy = ToyAutomaton{}; };
  hooks.applyMutation = [&toy](std::span<const std::uint8_t> bytes) {
    ByteReader r{bytes};
    const std::uint64_t v = r.u64();
    if (!r.exhausted()) return false;
    toy.apply(v);
    return true;
  };
  return hooks;
}

// Crash at a random point of the append/snapshot schedule — including
// mid-record and mid-snapshot writes and latent snapshot bit rot — then
// recover, and assert the machine's contract: the recovered state is
// bit-identical (by hash) to a clean run over the surviving history
// prefix, and the replay tail stays bounded by the snapshot cadence.
TEST(StateMachineKillPoint, RecoveryMatchesCleanRunHashAcrossSeeds) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng{0xe17c0ffeeull * seed};

    Changelog log;
    DurableStateMachine machine{log, DurableStateMachine::Options{}};
    ToyAutomaton toy;
    machine.setHooks(toyHooks(toy));

    // history holds the records with global indices
    // [historyBase, historyBase + history.size()).  historyBase only
    // moves when a recovery provably loses the compacted prefix: every
    // snapshot damaged AND the changelog already compacted past zero —
    // the one case where durable state legitimately cannot reach back
    // to index 0.
    std::vector<std::uint64_t> history;
    std::uint64_t historyBase = 0;
    // Shadow of the store's VALID images (indexes, oldest..newest),
    // mirroring the retention rule, so the test states the replay bound
    // independently: recovery replays at most the records after the
    // newest valid snapshot.
    constexpr std::size_t kKeep = 2;  // SnapshotStore::Options default
    std::vector<std::uint64_t> validSnaps;
    bool newestRawValid = false;
    double now = 0.0;
    std::uint64_t recoveriesWithSnapshot = 0;

    const auto recoverAndCheck = [&] {
      const auto stats = machine.recover(now);
      const std::uint64_t totalEnd = historyBase + history.size();
      if (!validSnaps.empty()) {
        EXPECT_TRUE(stats.usedSnapshot);
        EXPECT_EQ(stats.snapshotIndex, validSnaps.back());
        EXPECT_LE(stats.replayedRecords, totalEnd - validSnaps.back())
            << "replay not bounded by snapshot interval";
      } else {
        EXPECT_FALSE(stats.usedSnapshot);
      }
      // The crash may have cost the torn/corrupt suffix, never more.
      ASSERT_LE(stats.recoveredIndex, totalEnd);
      ASSERT_GE(stats.recoveredIndex, historyBase);
      history.resize(stats.recoveredIndex - historyBase);
      if (!stats.usedSnapshot && log.baseIndex() > historyBase) {
        // No snapshot survived and the log was compacted: the prefix is
        // genuinely unrecoverable, and the machine restarts the stream
        // at the compaction point.
        history.erase(history.begin(),
                      history.begin() + static_cast<std::ptrdiff_t>(
                                            log.baseIndex() - historyBase));
        historyBase = log.baseIndex();
      }

      // Determinism: recovered state == clean run over the surviving
      // stream, asserted by hash.
      ToyAutomaton clean;
      for (const std::uint64_t v : history) clean.apply(v);
      EXPECT_EQ(machine.stateHash(), clean.hash());
      EXPECT_EQ(toy.hash(), clean.hash());
      if (stats.usedSnapshot) ++recoveriesWithSnapshot;
      // A fast-forward (snapshot outran a torn tail) strands images
      // older than the new base: mirror their rejection.
      while (!validSnaps.empty() && validSnaps.front() < log.baseIndex()) {
        validSnaps.erase(validSnaps.begin());
      }
    };

    for (int step = 0; step < 600; ++step) {
      now += 1.0;
      const std::uint64_t action = rng.uniformInt(100);
      if (action < 68) {
        const std::uint64_t v = rng.nextU64();
        log.append(payload(v));
        toy.apply(v);
        history.push_back(v);
      } else if (action < 78) {
        if (rng.uniformInt(4) == 0) machine.snapshots().armTornWrite();
        const bool willTear = machine.snapshots().tornWriteArmed();
        const auto res = machine.takeSnapshot(/*term=*/1, now);
        if (res.taken) {
          newestRawValid = !willTear;
          if (!willTear) {
            validSnaps.push_back(res.index);
            // Mirror retention: oldest valid images beyond `keep` go.
            while (validSnaps.size() > kKeep) {
              validSnaps.erase(validSnaps.begin());
            }
          }
        }
      } else if (action < 86) {
        log.tearTail(rng.nextU64());  // crash mid-append
        recoverAndCheck();
      } else if (action < 93) {
        log.corruptTail(rng.nextU64());  // bit rot in the tail record
        recoverAndCheck();
      } else if (action < 97) {
        // Latent bit rot in the newest image (valid or already torn).
        if (machine.snapshots().corruptLatest(rng.nextU64()) &&
            newestRawValid) {
          validSnaps.pop_back();
          newestRawValid = false;
        }
        recoverAndCheck();
      } else {
        recoverAndCheck();  // clean restart: nothing may be lost
      }
    }
    // The schedule actually exercised the snapshot fallback path.
    EXPECT_GT(machine.snapshotsTaken(), 0u);
    EXPECT_GT(recoveriesWithSnapshot, 0u);
    EXPECT_GT(machine.recoveries(), 0u);
    EXPECT_GT(machine.compactedRecordsTotal(), 0u);
  }
}

// --- intent journal (crash-mid-write regression) --------------------------

IntentRecord addVip(std::uint32_t vip) {
  IntentRecord rec;
  rec.op = IntentOp::AddVip;
  rec.vip = VipId{vip};
  rec.app = AppId{0};
  rec.sw = SwitchId{0};
  rec.router = AccessRouterId{0};
  return rec;
}

TEST(IntentJournalDurability, ReplayStopsAtFirstMalformedRecord) {
  IntentJournal journal;
  for (std::uint32_t v = 1; v <= 4; ++v) journal.append(addVip(v));

  // Crash mid-write: the last record's frame is half on "disk".
  ASSERT_TRUE(journal.changelog().tearTail(/*entropy=*/5));

  // Replay must stop at the valid prefix — the torn record is cut off,
  // records before it all land.
  const IntentStore replayed = journal.replay();
  EXPECT_EQ(replayed.vipCount(), 3u);
  EXPECT_NE(replayed.find(VipId{3}), nullptr);
  EXPECT_EQ(replayed.find(VipId{4}), nullptr);

  // A CRC-valid prefix followed by a corrupt record: same contract.
  IntentJournal journal2;
  for (std::uint32_t v = 1; v <= 4; ++v) journal2.append(addVip(v));
  ASSERT_TRUE(journal2.changelog().corruptTail(/*entropy=*/0x3cu));
  EXPECT_EQ(journal2.replay().vipCount(), 3u);
}

TEST(IntentJournalDurability, ResyncAfterTruncationDropsDeadRecords) {
  IntentJournal journal;
  for (std::uint32_t v = 1; v <= 4; ++v) journal.append(addVip(v));
  journal.appendTermChange(7);
  ASSERT_EQ(journal.size(), 4u);  // term changes are not intent records

  ASSERT_TRUE(journal.changelog().tearTail(/*entropy=*/9));
  journal.changelog().truncateToValidPrefix();
  journal.resyncFromDurable();
  // The term record was the torn tail: the cache keeps all four intent
  // records but the journaled term is gone.
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.lastTerm(), 0u);
}

TEST(IntentJournalDurability, SemanticallyMalformedRecordStopsReplay) {
  IntentJournal journal;
  journal.append(addVip(1));
  // A CRC-valid record the store must refuse: AddRip to a VIP that does
  // not exist.  Replay treats the refusal as end-of-trustworthy-prefix.
  IntentRecord bad;
  bad.op = IntentOp::AddRip;
  bad.vip = VipId{77};
  bad.rip = RipEntry{RipId{1}, VmId{1}, VipId{}, 1.0};
  journal.append(bad);
  journal.append(addVip(2));  // after the stop: never replayed

  const IntentStore replayed = journal.replay();
  EXPECT_EQ(replayed.vipCount(), 1u);
  EXPECT_NE(replayed.find(VipId{1}), nullptr);
  EXPECT_EQ(replayed.find(VipId{2}), nullptr);
}

// --- whole-DC snapshot + recovery through the manager ---------------------

TEST(DurableManagerState, CrashWithTornTailRecoversFromSnapshotPlusTail) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  dc.bootstrap();

  // Past the first periodic snapshot (period 60s, first at ~36s).
  dc.runUntil(100.0);
  auto& machine = dc.manager->viprip().stateMachine();
  ASSERT_GT(machine.snapshotsTaken(), 0u);
  const std::uint64_t termBefore = dc.manager->term();

  // Leader crashes mid-append; the standby recovers snapshot + tail.
  dc.faults->tornJournalWrite(105.0, /*repairAfter=*/30.0);
  dc.runUntil(120.0);
  ASSERT_TRUE(dc.manager->leaderUp());
  EXPECT_GT(dc.manager->term(), termBefore);
  EXPECT_EQ(machine.recoveries(), 1u);
  const auto& rec = machine.lastRecovery();
  EXPECT_TRUE(rec.usedSnapshot);
  EXPECT_GT(rec.truncatedBytes, 0u);
  // Fencing survived durably: the recovered term floor forced the new
  // leader strictly above everything the dead one journaled.
  EXPECT_GT(dc.manager->term(), rec.snapshotTerm);
  EXPECT_EQ(dc.manager->viprip().durableTerm(), dc.manager->term());

  // The recovered world converges and serves; later snapshots build up
  // a fallback pair and compaction finally reclaims the bootstrap tail.
  dc.runUntil(240.0);
  EXPECT_EQ(dc.manager->reconciler().divergenceLastRound(), 0u);
  EXPECT_GT(machine.compactedRecordsTotal(), 0u);
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
  EXPECT_EQ(r.stateRecoveries, 1u);
  EXPECT_GT(r.stateSnapshotsTaken, 0u);
  EXPECT_GT(r.stateTruncatedBytes, 0u);
  EXPECT_GT(r.stateChangelogRecords, 0u);
}

TEST(DurableManagerState, CorruptSnapshotFallsBackWithoutLosingState) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  dc.bootstrap();
  dc.runUntil(100.0);
  auto& machine = dc.manager->viprip().stateMachine();
  ASSERT_GT(machine.snapshotsTaken(), 0u);
  const std::size_t vipsBefore = dc.manager->viprip().intent().vipCount();
  ASSERT_GT(vipsBefore, 0u);

  // Latent bit rot in the newest image, then a leader crash: recovery
  // must reject the image and fall back (older snapshot or replay)
  // without losing any acknowledged state.
  dc.faults->corruptSnapshot(101.0);
  dc.faults->crashGlobalManager(102.0, /*repairAfter=*/30.0);
  dc.runUntil(130.0);
  ASSERT_TRUE(dc.manager->leaderUp());
  EXPECT_GE(machine.snapshotsRejectedTotal(), 1u);
  EXPECT_EQ(dc.manager->viprip().intent().vipCount(), vipsBefore);

  dc.runUntil(240.0);
  EXPECT_EQ(dc.manager->reconciler().divergenceLastRound(), 0u);
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
  EXPECT_GE(r.stateSnapshotsRejected, 1u);
}

// --- seeded retransmit jitter ---------------------------------------------

// Two switches behind a dead channel retry the same command schedule;
// with jitter their timers must diverge (no retry storm lockstep), yet
// each schedule is a pure function of (jitterSeed, switch id).
TEST(CommandSenderJitter, RetrySchedulesDivergeAcrossSwitchesButReplay) {
  const auto transmitTimes = [](std::uint64_t jitterSeed, double jitter,
                                SwitchId::value_type swIndex) {
    Simulation sim;
    SwitchFleet fleet;
    // Create both switches in every run so ids and streams line up.
    const SwitchId s0 = fleet.addSwitch(SwitchLimits{});
    const SwitchId s1 = fleet.addSwitch(SwitchLimits{});
    const SwitchId sw = swIndex == 0 ? s0 : s1;
    ControlChannel channel{sim, 1};
    channel.setPartitioned(s0, true);
    channel.setPartitioned(s1, true);
    CommandSender::Options opt;
    opt.ackTimeoutSeconds = 1.0;
    opt.maxBackoffSeconds = 8.0;
    opt.maxAttempts = 0;  // retry forever; we sample the schedule
    opt.backoffJitter = jitter;
    opt.jitterSeed = jitterSeed;
    CommandSender sender{sim, channel, fleet, opt};

    std::vector<SimTime> times;
    Tracer tracer{sim, Tracer::Options{1u << 10, true}};
    sender.setTracer(&tracer);
    SwitchCommand cfg;
    cfg.kind = CmdKind::ConfigureVip;
    cfg.vip = VipId{1};
    cfg.app = AppId{0};
    cfg.trace = tracer.begin();
    sender.send(sw, cfg, [](Status) {});
    sim.runUntil(200.0);
    for (const TraceEvent& e : tracer.ring().snapshot()) {
      if (e.hop == HopKind::CmdTransmit) times.push_back(e.at);
    }
    return times;
  };

  const auto a = transmitTimes(0xfeedu, 0.1, 0);
  const auto b = transmitTimes(0xfeedu, 0.1, 1);
  ASSERT_GT(a.size(), 8u);
  ASSERT_GT(b.size(), 8u);
  // The schedules must not resynchronize — even after the deterministic
  // backoff saturates at maxBackoff, jitter keeps the links apart.
  std::size_t equal = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 1; i < n; ++i) {
    if (a[i] == b[i]) ++equal;
  }
  EXPECT_LT(equal, n / 4) << "retry schedules locked in step";

  // Determinism: the same (seed, switch) reproduces the exact schedule.
  EXPECT_EQ(a, transmitTimes(0xfeedu, 0.1, 0));
  // A different base seed moves it.
  EXPECT_NE(a, transmitTimes(0xbeefu, 0.1, 0));
  // Jitter off: both switches collapse to the same deterministic
  // schedule — the pre-jitter behavior, byte for byte.
  const auto plainA = transmitTimes(0xfeedu, 0.0, 0);
  const auto plainB = transmitTimes(0xfeedu, 0.0, 1);
  EXPECT_EQ(std::vector<SimTime>(plainA.begin() + 1, plainA.end()),
            std::vector<SimTime>(plainB.begin() + 1, plainB.end()));
}

// --- epoch report canonical encoding --------------------------------------

TEST(EpochReportCodec, EncodeDecodeHashRoundtrip) {
  EpochReport rep;
  rep.time = 82.0;
  rep.stateChangelogRecords = 123;
  rep.stateSnapshotsTaken = 2;
  rep.stateRecordsSinceSnapshot = 17;
  rep.stateRecoveries = 1;
  rep.stateReplayedRecords = 9;
  rep.stateTruncatedBytes = 13;
  rep.stateSnapshotsRejected = 1;
  rep.stateCompactedRecords = 106;
  rep.appDemandRps[AppId{3}] = 1000.0;
  rep.appServedRps[AppId{3}] = 990.0;

  ByteWriter w;
  encodeEpochReport(rep, w);
  ByteReader r{w.bytes()};
  const EpochReport back = decodeEpochReport(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.time, rep.time);
  EXPECT_EQ(back.stateChangelogRecords, 123u);
  EXPECT_EQ(back.stateCompactedRecords, 106u);
  EXPECT_EQ(hashEpochReport(back), hashEpochReport(rep));

  // The hash is sensitive to every durable-state field.
  EpochReport changed = rep;
  changed.stateReplayedRecords = 10;
  EXPECT_NE(hashEpochReport(changed), hashEpochReport(rep));
}

}  // namespace
}  // namespace mdc
