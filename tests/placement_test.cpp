// Unit and property tests for the placement algorithms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdc/core/placement.hpp"
#include "mdc/sim/rng.hpp"
#include "mdc/util/stats.hpp"

namespace mdc {
namespace {

PlacementInput uniformInput(std::size_t servers, std::size_t apps,
                            double perAppRps) {
  PlacementInput in;
  in.servers.assign(servers, PlacementServer{CapacityVec{8.0, 32.0, 1.0}});
  in.apps.assign(apps, PlacementApp{AppSla{}, perAppRps});
  return in;
}

TEST(FirstFitPlacement, SatisfiesFeasibleDemand) {
  // 4 servers x 8 cores; 4 apps x 1000 rps x 1 core/krps = 4 cores total.
  PlacementInput in = uniformInput(4, 4, 1000.0);
  FirstFitPlacement ff;
  const auto r = ff.place(in);
  validatePlacement(in, r);
  EXPECT_NEAR(r.satisfactionRatio(), 1.0, 1e-9);
  EXPECT_EQ(r.instancesStopped, 0u);
}

TEST(FirstFitPlacement, PacksFirstServersFirst) {
  PlacementInput in = uniformInput(4, 2, 1000.0);
  FirstFitPlacement ff;
  const auto r = ff.place(in);
  // Everything fits on server 0 (8 cores, 2 krps needs 2 cores + mem).
  for (const Assignment& a : r.assignment) EXPECT_EQ(a.server, 0u);
}

TEST(FirstFitPlacement, OverloadLeavesUnsatisfiedDemand) {
  // 1 server x 8 cores; demand 20 krps needs 20 cores.
  PlacementInput in = uniformInput(1, 2, 10'000.0);
  FirstFitPlacement ff;
  const auto r = ff.place(in);
  validatePlacement(in, r);
  EXPECT_LT(r.satisfiedRps, r.demandRps);
  EXPECT_GT(r.satisfiedRps, 0.0);
}

TEST(PlacementController, SatisfiesFeasibleDemand) {
  PlacementInput in = uniformInput(6, 10, 800.0);
  PlacementController pc;
  const auto r = pc.place(in);
  validatePlacement(in, r);
  EXPECT_NEAR(r.satisfactionRatio(), 1.0, 1e-9);
}

TEST(PlacementController, BalancesBetterThanFirstFit) {
  PlacementInput in = uniformInput(8, 16, 700.0);
  const auto ffr = FirstFitPlacement{}.place(in);
  const auto pcr = PlacementController{}.place(in);
  validatePlacement(in, ffr);
  validatePlacement(in, pcr);

  auto serverLoads = [&](const PlacementResult& r) {
    std::vector<double> load(in.servers.size(), 0.0);
    for (const Assignment& a : r.assignment) {
      load[a.server] += a.rps;
    }
    return load;
  };
  const double ffImb = maxOverMean(serverLoads(ffr));
  const double pcImb = maxOverMean(serverLoads(pcr));
  EXPECT_LT(pcImb, ffImb);
  EXPECT_LT(pcImb, 1.3);
}

TEST(PlacementController, MinimizesChurnAgainstCurrentPlacement) {
  PlacementInput in = uniformInput(4, 4, 1000.0);
  // A feasible existing placement: app i on server i.
  for (std::uint32_t i = 0; i < 4; ++i) {
    in.current.push_back(Assignment{i, i, 1000.0});
  }
  PlacementController pc;
  const auto r = pc.place(in);
  validatePlacement(in, r);
  EXPECT_NEAR(r.satisfactionRatio(), 1.0, 1e-9);
  EXPECT_EQ(r.instancesStarted, 0u);
  EXPECT_EQ(r.instancesStopped, 0u);
}

TEST(PlacementController, DropsInstancesWhenDemandVanishes) {
  PlacementInput in = uniformInput(2, 1, 0.0);
  in.current.push_back(Assignment{0, 0, 500.0});
  in.current.push_back(Assignment{0, 1, 500.0});
  const auto r = PlacementController{}.place(in);
  validatePlacement(in, r);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.instancesStopped, 2u);
}

TEST(PlacementController, RespectsMaxInstancesPerApp) {
  PlacementController::Options opt;
  opt.maxInstancesPerApp = 2;
  PlacementController pc{opt};
  // One app whose demand needs more than 2 servers' worth of CPU.
  PlacementInput in = uniformInput(8, 1, 30'000.0);
  const auto r = pc.place(in);
  validatePlacement(in, r);
  std::size_t instances = 0;
  for (const Assignment& a : r.assignment) {
    if (a.rps > 0.0) ++instances;
  }
  EXPECT_LE(instances, 2u);
  EXPECT_LT(r.satisfiedRps, r.demandRps);  // capped by the limit
}

TEST(PlacementController, MemoryFootprintLimitsColocation) {
  // Server with 4 GB memory, app footprint 2 GB -> at most 2 apps.
  PlacementInput in;
  in.servers.assign(1, PlacementServer{CapacityVec{32.0, 4.0, 10.0}});
  in.apps.assign(3, PlacementApp{AppSla{}, 100.0});
  const auto r = PlacementController{}.place(in);
  validatePlacement(in, r);
  std::size_t placed = 0;
  for (const Assignment& a : r.assignment) {
    if (a.rps > 0.0) ++placed;
  }
  EXPECT_LE(placed, 2u);
}

TEST(PlacementController, InvalidCurrentAssignmentThrows) {
  PlacementInput in = uniformInput(2, 2, 100.0);
  in.current.push_back(Assignment{5, 0, 10.0});
  EXPECT_THROW((void)PlacementController{}.place(in), PreconditionError);
}

TEST(PlacementController, OptionValidation) {
  PlacementController::Options bad;
  bad.balanceTolerance = 0.5;
  EXPECT_THROW((PlacementController{bad}), PreconditionError);
  bad = PlacementController::Options{};
  bad.maxInstancesPerApp = 0;
  EXPECT_THROW((PlacementController{bad}), PreconditionError);
}

TEST(ValidatePlacement, CatchesOversubscription) {
  PlacementInput in = uniformInput(1, 1, 1000.0);
  PlacementResult r;
  r.assignment.push_back(Assignment{0, 0, 100'000.0});
  r.satisfiedRps = 100'000.0;
  r.demandRps = 1000.0;
  EXPECT_THROW(validatePlacement(in, r), InvariantError);
}

TEST(ValidatePlacement, CatchesDuplicatePairs) {
  PlacementInput in = uniformInput(1, 1, 1000.0);
  PlacementResult r;
  r.assignment.push_back(Assignment{0, 0, 100.0});
  r.assignment.push_back(Assignment{0, 0, 100.0});
  r.satisfiedRps = 200.0;
  r.demandRps = 1000.0;
  EXPECT_THROW(validatePlacement(in, r), InvariantError);
}

// Property suite over randomized instances: both algorithms must produce
// valid placements; the controller must satisfy at least as much demand
// as first-fit (it strictly dominates by construction) up to epsilon.
class PlacementPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlacementPropertyTest, BothAlgorithmsProduceValidPlacements) {
  Rng rng{GetParam()};
  PlacementInput in;
  const std::size_t servers = 2 + rng.uniformInt(12);
  const std::size_t apps = 1 + rng.uniformInt(20);
  for (std::size_t s = 0; s < servers; ++s) {
    in.servers.push_back(PlacementServer{
        CapacityVec{rng.uniform(4.0, 16.0), rng.uniform(8.0, 64.0),
                    rng.uniform(0.5, 2.0)}});
  }
  for (std::size_t a = 0; a < apps; ++a) {
    AppSla sla;
    sla.cpuPerKrps = rng.uniform(0.5, 2.0);
    sla.memPerInstanceGb = rng.uniform(1.0, 4.0);
    sla.gbpsPerKrps = rng.uniform(0.01, 0.1);
    in.apps.push_back(PlacementApp{sla, rng.uniform(0.0, 3000.0)});
  }
  // Random (feasible-per-entry) current placement.
  const std::size_t currents = rng.uniformInt(5);
  for (std::size_t c = 0; c < currents; ++c) {
    in.current.push_back(
        Assignment{static_cast<std::uint32_t>(rng.uniformInt(apps)),
                   static_cast<std::uint32_t>(rng.uniformInt(servers)),
                   rng.uniform(0.0, 500.0)});
  }

  const auto ffr = FirstFitPlacement{}.place(in);
  const auto pcr = PlacementController{}.place(in);
  validatePlacement(in, ffr);
  validatePlacement(in, pcr);
  EXPECT_GE(pcr.satisfiedRps, ffr.satisfiedRps - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PlacementPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 140));

}  // namespace
}  // namespace mdc
