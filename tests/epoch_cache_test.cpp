// Equivalence and invalidation tests for the incremental epoch engine.
//
// The load-bearing property: a FluidEngine in incremental mode — with any
// worker count — produces EpochReports *bit-identical* to full-recompute
// mode.  The randomized test below drives three engines over the same
// shared world through hundreds of epochs of VIP transfers, DNS weight
// shifts, switch crashes/repairs, and VM deaths, comparing every report
// field exactly (not within a tolerance).  The targeted tests pin down
// the invalidation matrix: which mutations must dirty an app's cache and
// which must not.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "mdc/core/viprip_manager.hpp"
#include "mdc/scenario/fluid_engine.hpp"

namespace mdc {
namespace {

FluidEngine::Options engineOptions(bool incremental, unsigned workers) {
  FluidEngine::Options o;
  o.incremental = incremental;
  o.workers = workers;
  return o;
}

/// Exact, field-for-field report comparison.  The engine-observability
/// counters (engineAppsRecomputed/engineAppsCached) are deliberately
/// excluded: they describe the computation, not the modelled system.
void expectSameReport(const EpochReport& a, const EpochReport& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.accessLinkUtil, b.accessLinkUtil);
  EXPECT_EQ(a.switchUtil, b.switchUtil);
  EXPECT_EQ(a.appDemandRps, b.appDemandRps);
  EXPECT_EQ(a.appServedRps, b.appServedRps);
  EXPECT_EQ(a.vipDemandGbps, b.vipDemandGbps);
  EXPECT_EQ(a.externalOfferedGbps, b.externalOfferedGbps);
  EXPECT_EQ(a.externalServedGbps, b.externalServedGbps);
  EXPECT_EQ(a.unroutedRps, b.unroutedRps);
  EXPECT_EQ(a.unroutedByCause, b.unroutedByCause);
  EXPECT_EQ(a.degradedRoutedRps, b.degradedRoutedRps);
  EXPECT_EQ(a.downSwitches, b.downSwitches);
  EXPECT_EQ(a.downServers, b.downServers);
  EXPECT_EQ(a.orphanedVips, b.orphanedVips);
  EXPECT_EQ(a.ctrlMessagesDropped, b.ctrlMessagesDropped);
  EXPECT_EQ(a.ctrlRetransmits, b.ctrlRetransmits);
  EXPECT_EQ(a.ctrlTimeouts, b.ctrlTimeouts);
  EXPECT_EQ(a.ctrlInflightCommands, b.ctrlInflightCommands);
  EXPECT_EQ(a.ctrlPartitionedLinks, b.ctrlPartitionedLinks);
}

// A multi-app world with three engines observing the *same* stores: a
// full-recompute reference, an incremental engine, and an incremental
// engine with a worker pool.  Stepping all three at the same sim time is
// safe: ResolverPopulation::advance is idempotent within a timestamp
// (dt = 0 for the second and third calls) and RouteRegistry::settle
// re-settles nothing.
struct TriWorld {
  Simulation sim;
  Topology topo;
  AppRegistry apps;
  AuthoritativeDns dns;
  RouteRegistry routes{0.0};
  SwitchFleet fleet;
  HostFleet hosts;
  std::unique_ptr<ResolverPopulation> resolvers;
  std::unique_ptr<StaticDemand> demand;
  std::unique_ptr<VipRipManager> viprip;
  std::unique_ptr<FluidEngine> full;
  std::unique_ptr<FluidEngine> inc;
  std::unique_ptr<FluidEngine> par;

  std::vector<AppId> appIds;
  std::vector<std::vector<VipId>> appVips;  // per app
  std::vector<VmId> aliveVms;

  static TopologyConfig topoConfig(std::uint32_t servers,
                                   std::uint32_t switches) {
    TopologyConfig cfg;
    cfg.numServers = servers;
    cfg.serverCapacity = CapacityVec{32.0, 128.0, 2.0};
    cfg.numIsps = 2;
    cfg.accessLinksPerIsp = 2;
    cfg.accessLinkGbps = 4.0;
    cfg.numSwitches = switches;
    cfg.switchTrunkGbps = 2.0;
    return cfg;
  }

  TriWorld(std::uint32_t numApps, std::uint32_t servers,
           std::uint32_t switches, std::uint32_t seed,
           double rpsLo = 500.0, double rpsHi = 4000.0, int fanout = 2)
      : topo(topoConfig(servers, switches)),
        hosts(topo, sim, HostCostModel{}) {
    // The equivalence property under test is "any worker count produces
    // the same bits", which needs real multi-worker pools even on
    // single-core CI machines — skip the hardware clamp.
    ::setenv("MDC_ALLOW_OVERSUBSCRIBE", "1", 1);
    std::mt19937 rng(seed);
    for (std::uint32_t i = 0; i < switches; ++i) {
      fleet.addSwitch(SwitchLimits{});
    }
    std::uniform_real_distribution<double> rpsDist(rpsLo, rpsHi);
    std::vector<double> rates;
    for (std::uint32_t a = 0; a < numApps; ++a) {
      const double rps = rpsDist(rng);
      rates.push_back(rps);
      appIds.push_back(
          apps.create("app-" + std::to_string(a), AppSla{}, rps));
      dns.registerApp(appIds.back());
    }
    demand = std::make_unique<StaticDemand>(rates);
    resolvers = std::make_unique<ResolverPopulation>(dns, ResolverConfig{});
    viprip = std::make_unique<VipRipManager>(sim, fleet, dns, routes, apps,
                                             topo, VipRipManager::Options{});
    full = std::make_unique<FluidEngine>(sim, topo, apps, dns, *resolvers,
                                         routes, fleet, hosts, *demand,
                                         *viprip, engineOptions(false, 1));
    inc = std::make_unique<FluidEngine>(sim, topo, apps, dns, *resolvers,
                                        routes, fleet, hosts, *demand,
                                        *viprip, engineOptions(true, 1));
    par = std::make_unique<FluidEngine>(sim, topo, apps, dns, *resolvers,
                                        routes, fleet, hosts, *demand,
                                        *viprip, engineOptions(true, 3));

    // Wire every app: 1-2 VIPs, each with 1-2 VM RIPs.
    std::uniform_int_distribution<std::uint32_t> srvDist(0, servers - 1);
    std::uniform_int_distribution<std::uint32_t> swDist(0, switches - 1);
    std::uniform_int_distribution<std::uint32_t> arDist(
        0, topo.config().numIsps * topo.config().accessLinksPerIsp - 1);
    std::uniform_int_distribution<int> countDist(1, fanout);
    std::uniform_real_distribution<double> weightDist(0.5, 2.0);
    appVips.resize(numApps);
    for (std::uint32_t a = 0; a < numApps; ++a) {
      const AppId app = appIds[a];
      const int vips = countDist(rng);
      for (int v = 0; v < vips; ++v) {
        const VipId vip{a * 4 + static_cast<std::uint32_t>(v)};
        EXPECT_TRUE(fleet.configureVip(SwitchId{swDist(rng)}, vip, app).ok());
        const int rips = countDist(rng);
        for (int r = 0; r < rips; ++r) {
          // Random placement; probe forward past full servers.
          const CapacityVec slice = apps.app(app).sla.sliceFor(rates[a], 1.0);
          Result<VmId> vm{Error{"unplaced", ""}};
          const std::uint32_t start = srvDist(rng);
          for (std::uint32_t probe = 0; probe < servers && !vm.ok();
               ++probe) {
            vm = hosts.createVm(app, ServerId{(start + probe) % servers},
                                slice);
          }
          EXPECT_TRUE(vm.ok());
          aliveVms.push_back(vm.value());
          RipEntry e;
          e.rip = RipId{vip.value() * 16 + static_cast<std::uint32_t>(r)};
          e.vm = vm.value();
          e.weight = weightDist(rng);
          EXPECT_TRUE(fleet.addRip(vip, e).ok());
        }
        dns.addVip(app, vip, weightDist(rng));
        routes.advertise(vip, AccessRouterId{arDist(rng)}, sim.now());
        appVips[a].push_back(vip);
      }
    }
    sim.runUntil(61.0);  // boot every VM
    routes.settle(sim.now());
  }

  /// Steps all three engines at the current time and checks exact
  /// equality; returns the reference report.
  EpochReport stepAll(const std::string& what) {
    const EpochReport ref = full->step();
    const EpochReport fromCache = inc->step();
    const EpochReport sharded = par->step();
    expectSameReport(ref, fromCache, what + " [incremental]");
    expectSameReport(ref, sharded, what + " [incremental+workers]");
    return ref;
  }
};

TEST(EpochCacheEquivalence, RandomizedChurn) {
  TriWorld w(24, 16, 6, /*seed=*/0xE15);
  std::mt19937 rng(0x5EED);
  std::uniform_int_distribution<int> mutCount(0, 3);
  std::uniform_int_distribution<int> mutKind(0, 5);
  std::uniform_real_distribution<double> weightDist(0.0, 3.0);
  std::uniform_int_distribution<std::size_t> appPick(0, w.appIds.size() - 1);
  std::uniform_int_distribution<std::uint32_t> swPick(
      0, static_cast<std::uint32_t>(w.fleet.size()) - 1);

  constexpr int kEpochs = 220;
  for (int round = 0; round < kEpochs; ++round) {
    const int mutations = mutCount(rng);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t a = appPick(rng);
      const std::vector<VipId>& vips = w.appVips[a];
      const VipId vip = vips[rng() % vips.size()];
      switch (mutKind(rng)) {
        case 0:  // VIP transfer (may fail: same switch, down switch, ...)
          (void)w.fleet.transferVip(vip, SwitchId{swPick(rng)});
          break;
        case 1:  // DNS weight shift
          w.dns.setWeight(w.appIds[a], vip, weightDist(rng));
          break;
        case 2: {  // switch crash (keep at least one up)
          const SwitchId sw{swPick(rng)};
          if (w.fleet.at(sw).up() && w.fleet.upCount() > 1) {
            (void)w.fleet.crashSwitch(sw, w.sim.now());
          }
          break;
        }
        case 3: {  // switch repair
          const SwitchId sw{swPick(rng)};
          if (!w.fleet.at(sw).up()) w.fleet.recoverSwitch(sw);
          break;
        }
        case 4: {  // VM death
          if (w.aliveVms.size() > 4) {
            const std::size_t i = rng() % w.aliveVms.size();
            w.hosts.destroyVm(w.aliveVms[i]);
            w.aliveVms.erase(w.aliveVms.begin() +
                             static_cast<std::ptrdiff_t>(i));
          }
          break;
        }
        case 5:  // RIP weight change (rip id may not exist: ignored)
          (void)w.fleet.setRipWeight(vip, RipId{vip.value() * 16},
                                     weightDist(rng));
          break;
      }
    }
    w.sim.runUntil(w.sim.now() + 1.0);
    (void)w.stepAll("round " + std::to_string(round));
    if (HasFatalFailure() || HasNonfatalFailure()) break;  // don't spam
  }

  // The cache must actually have been doing work: with <= 3 mutations per
  // round over 24 apps, most epochs serve most apps from cache.
  EXPECT_GT(w.inc->appsFromCache(), w.inc->appsRecomputed());
  // Full mode never reports engine stats.
  EXPECT_EQ(w.full->latest().engineAppsRecomputed, 0u);
  EXPECT_EQ(w.full->latest().engineAppsCached, 0u);
}

TEST(EpochCacheEquivalence, BucketedEmissionMatchesSequential) {
  // Enough apps that the parallel engine's bucketed link emission and
  // slot-order merge carry real volume; the merge must replay the
  // sequential addition order bit-for-bit.
  TriWorld w(1200, 32, 8, /*seed=*/0xE15 + 1, /*rpsLo=*/200.0,
             /*rpsHi=*/600.0, /*fanout=*/1);
  for (int round = 0; round < 3; ++round) {
    w.sim.runUntil(w.sim.now() + 1.0);
    (void)w.stepAll("bucketed round " + std::to_string(round));
  }
  EXPECT_EQ(w.par->workerCount(), 3u);
}

TEST(EpochCacheEquivalence, BitIdenticalAcrossWorkerCountsUnderChurn) {
  // The PR-3 invariant at every pool size the engine supports: engines
  // with 2 and 8 workers (static ranges, per-worker arena segments,
  // bucketed merges) must reproduce the single-worker reference
  // bit-for-bit through 50 randomized mutation epochs.
  TriWorld w(32, 16, 6, /*seed=*/0xE15 + 2);
  auto eng2 = std::make_unique<FluidEngine>(
      w.sim, w.topo, w.apps, w.dns, *w.resolvers, w.routes, w.fleet,
      w.hosts, *w.demand, *w.viprip, engineOptions(true, 2));
  auto eng8 = std::make_unique<FluidEngine>(
      w.sim, w.topo, w.apps, w.dns, *w.resolvers, w.routes, w.fleet,
      w.hosts, *w.demand, *w.viprip, engineOptions(true, 8));
  ASSERT_EQ(eng2->workerCount(), 2u);
  ASSERT_EQ(eng8->workerCount(), 8u);

  std::mt19937 rng(0x5EED + 1);
  std::uniform_real_distribution<double> weightDist(0.0, 3.0);
  std::uniform_int_distribution<std::size_t> appPick(0, w.appIds.size() - 1);
  for (int round = 0; round < 50; ++round) {
    const std::size_t a = appPick(rng);
    const std::vector<VipId>& vips = w.appVips[a];
    const VipId vip = vips[rng() % vips.size()];
    if (round % 3 == 0) {
      w.dns.setWeight(w.appIds[a], vip, weightDist(rng));
    } else {
      (void)w.fleet.setRipWeight(vip, RipId{vip.value() * 16},
                                 weightDist(rng));
    }
    w.sim.runUntil(w.sim.now() + 1.0);
    const EpochReport ref = w.full->step();
    const EpochReport two = eng2->step();
    const EpochReport eight = eng8->step();
    const std::string what = "workers round " + std::to_string(round);
    expectSameReport(ref, two, what + " [2 workers]");
    expectSameReport(ref, eight, what + " [8 workers]");
    if (HasFatalFailure() || HasNonfatalFailure()) break;  // don't spam
  }
}

// --- Targeted invalidation-matrix tests --------------------------------

struct SmallWorld {
  Simulation sim;
  Topology topo;
  AppRegistry apps;
  AuthoritativeDns dns;
  RouteRegistry routes{0.0};
  SwitchFleet fleet;
  HostFleet hosts;
  std::unique_ptr<ResolverPopulation> resolvers;
  std::unique_ptr<StaticDemand> demand;
  std::unique_ptr<VipRipManager> viprip;
  std::unique_ptr<FluidEngine> engine;
  AppId app;
  VmId vm;

  static TopologyConfig topoConfig() {
    TopologyConfig cfg;
    cfg.numServers = 4;
    cfg.serverCapacity = CapacityVec{32.0, 128.0, 2.0};
    cfg.numIsps = 2;
    cfg.accessLinksPerIsp = 1;
    cfg.accessLinkGbps = 1.0;
    cfg.numSwitches = 3;
    cfg.switchTrunkGbps = 1.0;
    return cfg;
  }

  explicit SmallWorld(double appRps = 5000.0)
      : topo(topoConfig()), hosts(topo, sim, HostCostModel{}) {
    for (int i = 0; i < 3; ++i) fleet.addSwitch(SwitchLimits{});
    app = apps.create("web", AppSla{}, appRps);
    dns.registerApp(app);
    resolvers = std::make_unique<ResolverPopulation>(dns, ResolverConfig{});
    demand = std::make_unique<StaticDemand>(std::vector<double>{appRps});
    viprip = std::make_unique<VipRipManager>(sim, fleet, dns, routes, apps,
                                             topo, VipRipManager::Options{});
    engine = std::make_unique<FluidEngine>(sim, topo, apps, dns, *resolvers,
                                           routes, fleet, hosts, *demand,
                                           *viprip, engineOptions(true, 1));
    const auto v =
        hosts.createVm(app, ServerId{0},
                       apps.app(app).sla.sliceFor(2.0 * appRps, 1.0));
    EXPECT_TRUE(v.ok());
    vm = v.value();
    sim.runUntil(61.0);
    EXPECT_TRUE(fleet.configureVip(SwitchId{0}, VipId{0}, app).ok());
    RipEntry e;
    e.rip = RipId{0};
    e.vm = vm;
    EXPECT_TRUE(fleet.addRip(VipId{0}, e).ok());
    dns.addVip(app, VipId{0}, 1.0);
    routes.advertise(VipId{0}, AccessRouterId{0}, sim.now());
    routes.settle(sim.now());
  }

  EpochReport stepAt(double dt) {
    sim.runUntil(sim.now() + dt);
    return engine->step();
  }
};

TEST(EpochCache, SteadyStateServesFromCache) {
  SmallWorld w;
  const EpochReport first = w.stepAt(1.0);
  EXPECT_EQ(first.engineAppsRecomputed, 1u);
  EpochReport second = w.stepAt(1.0);
  EXPECT_EQ(second.engineAppsRecomputed, 0u);
  EXPECT_EQ(second.engineAppsCached, 1u);
  // Identical world, identical report (modulo the epoch timestamp).
  second.time = first.time;
  expectSameReport(first, second, "steady state");
  EXPECT_EQ(w.engine->appsRecomputed(), 1u);
  EXPECT_EQ(w.engine->appsFromCache(), 1u);
}

TEST(EpochCache, RipWeightChangeInvalidates) {
  SmallWorld w;
  (void)w.stepAt(1.0);
  ASSERT_TRUE(w.fleet.setRipWeight(VipId{0}, RipId{0}, 2.0).ok());
  const EpochReport r = w.stepAt(1.0);
  EXPECT_EQ(r.engineAppsRecomputed, 1u);
}

TEST(EpochCache, DnsWeightShiftInvalidates) {
  SmallWorld w;
  // A second VIP so the (normalized) share vector can actually shift.
  const auto v2 = w.hosts.createVm(
      w.app, ServerId{1}, w.apps.app(w.app).sla.sliceFor(10'000.0, 1.0));
  ASSERT_TRUE(v2.ok());
  w.sim.runUntil(w.sim.now() + 61.0);
  ASSERT_TRUE(w.fleet.configureVip(SwitchId{1}, VipId{1}, w.app).ok());
  RipEntry e;
  e.rip = RipId{16};
  e.vm = v2.value();
  ASSERT_TRUE(w.fleet.addRip(VipId{1}, e).ok());
  w.dns.addVip(w.app, VipId{1}, 1.0);
  w.routes.advertise(VipId{1}, AccessRouterId{1}, w.sim.now());
  w.routes.settle(w.sim.now());
  (void)w.stepAt(1.0);
  (void)w.stepAt(1.0);  // settle into the cache
  const double before = w.hosts.vm(w.vm).offeredRps;

  w.dns.setWeight(w.app, VipId{0}, 0.25);
  const EpochReport r = w.stepAt(1.0);
  EXPECT_EQ(r.engineAppsRecomputed, 1u);
  EXPECT_LT(w.hosts.vm(w.vm).offeredRps, before);
  // Resolver shares relax toward the new weights over the TTL; every
  // relax step must keep re-dirtying the app — the cache must not freeze
  // a moving share.
  const EpochReport r2 = w.stepAt(1.0);
  EXPECT_EQ(r2.engineAppsRecomputed, 1u);
}

TEST(EpochCache, VmDeathInvalidatesAndReportsDeadVm) {
  SmallWorld w;
  (void)w.stepAt(1.0);
  w.hosts.destroyVm(w.vm);
  const EpochReport r = w.stepAt(1.0);
  EXPECT_EQ(r.engineAppsRecomputed, 1u);
  EXPECT_NEAR(r.unroutedByCause.at("dead_vm"), 5000.0, 1e-6);
}

TEST(EpochCache, VipTransferInvalidates) {
  SmallWorld w;
  const EpochReport before = w.stepAt(1.0);
  EXPECT_GT(before.switchUtil[0], 0.0);
  ASSERT_TRUE(w.fleet.transferVip(VipId{0}, SwitchId{1}).ok());
  const EpochReport r = w.stepAt(1.0);
  EXPECT_EQ(r.engineAppsRecomputed, 1u);
  EXPECT_EQ(r.switchUtil[0], 0.0);
  EXPECT_GT(r.switchUtil[1], 0.0);
}

TEST(EpochCache, SwitchCrashInvalidates) {
  SmallWorld w;
  (void)w.stepAt(1.0);
  (void)w.fleet.crashSwitch(SwitchId{0}, w.sim.now());
  const EpochReport r = w.stepAt(1.0);
  EXPECT_EQ(r.engineAppsRecomputed, 1u);
  EXPECT_NEAR(r.unroutedByCause.at("no_owner"), 5000.0, 1e-6);
}

TEST(EpochCache, DegradedRoutedRpsTracksPaddedFallback) {
  SmallWorld w;
  const EpochReport healthy = w.stepAt(1.0);
  EXPECT_EQ(healthy.degradedRoutedRps, 0.0);
  // Pad the only route: no Active route remains, the engine falls back
  // to reachable (padded) routes and flags the traffic as degraded.
  w.routes.pad(VipId{0}, AccessRouterId{0}, w.sim.now());
  const EpochReport r = w.stepAt(1.0);
  EXPECT_NEAR(r.degradedRoutedRps, 5000.0, 1e-6);
  EXPECT_NEAR(r.appServedRps.at(w.app), 5000.0, 1e-6);
  EXPECT_EQ(r.unroutedRps, 0.0);
}

TEST(EpochCache, FullRecomputeFallbackKnob) {
  SmallWorld w;
  // Swap in a full-recompute engine over the same world.
  auto fullEngine = std::make_unique<FluidEngine>(
      w.sim, w.topo, w.apps, w.dns, *w.resolvers, w.routes, w.fleet,
      w.hosts, *w.demand, *w.viprip, engineOptions(false, 1));
  w.sim.runUntil(w.sim.now() + 1.0);
  const EpochReport inc = w.engine->step();
  const EpochReport full = fullEngine->step();
  expectSameReport(full, inc, "fallback knob");
  EXPECT_EQ(full.engineAppsRecomputed, 0u);
  EXPECT_EQ(full.engineAppsCached, 0u);
  EXPECT_EQ(fullEngine->appsRecomputed(), 0u);
}

}  // namespace
}  // namespace mdc
