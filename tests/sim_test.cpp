// Unit tests for the discrete-event kernel and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdc/sim/rng.hpp"
#include "mdc/sim/simulation.hpp"

namespace mdc {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(3); });
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  double firedAt = -1.0;
  sim.at(5.0, [&] {
    sim.after(2.5, [&] { firedAt = sim.now(); });
  });
  sim.runAll();
  EXPECT_DOUBLE_EQ(firedAt, 7.5);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.runUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulation, RunUntilLeavesFutureEventsPending) {
  Simulation sim;
  bool fired = false;
  sim.at(5.0, [&] { fired = true; });
  sim.runUntil(4.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.runUntil(6.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventHandle h = sim.at(1.0, [&] { fired = true; });
  sim.cancel(h);
  sim.runUntil(2.0);
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelNullHandleIsNoop) {
  Simulation sim;
  sim.cancel(EventHandle{});
  sim.runUntil(1.0);
}

TEST(Simulation, PeriodicFiresRepeatedly) {
  Simulation sim;
  int count = 0;
  sim.every(1.0, [&] { ++count; });
  sim.runUntil(5.5);
  EXPECT_EQ(count, 6);  // phase 0: fires at t = 0, 1, 2, 3, 4, 5
}

TEST(Simulation, PeriodicFirstFiringAtPhase) {
  Simulation sim;
  std::vector<double> times;
  sim.every(2.0, [&] { times.push_back(sim.now()); }, 0.5);
  sim.runUntil(5.0);
  EXPECT_EQ(times, (std::vector<double>{0.5, 2.5, 4.5}));
}

TEST(Simulation, PeriodicCancellable) {
  Simulation sim;
  int count = 0;
  const EventHandle h = sim.every(1.0, [&] { ++count; }, 1.0);
  sim.at(3.5, [&] { sim.cancel(h); });
  sim.runUntil(10.0);
  EXPECT_EQ(count, 3);  // fired at 1, 2, 3
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.runUntil(5.0);
  EXPECT_THROW(sim.at(4.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.after(-1.0, [] {}), PreconditionError);
}

TEST(Simulation, RunAllWithPeriodicThrows) {
  Simulation sim;
  sim.every(1.0, [] {});
  EXPECT_THROW(sim.runAll(), PreconditionError);
}

TEST(Simulation, EventsExecutedCounts) {
  Simulation sim;
  for (int i = 0; i < 10; ++i) sim.at(static_cast<double>(i), [] {});
  sim.runAll();
  EXPECT_EQ(sim.eventsExecuted(), 10u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniformInt(13), 13u);
  EXPECT_THROW((void)rng.uniformInt(0), PreconditionError);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng{42};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{42};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng{42};
  double sum = 0.0, sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double m = sum / n;
  EXPECT_NEAR(m, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(sumSq / n - m * m), 2.0, 0.1);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng{42};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{42};
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexPreconditions) {
  Rng rng{1};
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW((void)rng.weightedIndex(zero), PreconditionError);
  std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW((void)rng.weightedIndex(neg), PreconditionError);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a{9};
  Rng b{9};
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.nextU64(), fb.nextU64());
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  ZipfSampler z{100, 0.9};
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) sum += z.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  ZipfSampler z{50, 1.1};
  EXPECT_GT(z.probability(0), z.probability(1));
  EXPECT_GT(z.probability(1), z.probability(49));
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  ZipfSampler z{10, 0.0};
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(z.probability(i), 0.1, 1e-9);
  }
}

TEST(ZipfSampler, SamplingMatchesProbability) {
  ZipfSampler z{20, 1.0};
  Rng rng{11};
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.probability(0), 0.02);
}

}  // namespace
}  // namespace mdc
