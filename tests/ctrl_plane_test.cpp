// Tests for the unreliable control channel and the anti-entropy
// reconciliation of the VIP/RIP control plane (E14): commands must apply
// exactly once through drops, duplicates, reorders, and partitions; every
// request completion must fire exactly once; and the reconciler must
// drive intended-vs-actual drift to zero.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

#include "mdc/ctrl/command_sender.hpp"
#include "mdc/ctrl/control_channel.hpp"
#include "mdc/ctrl/done_guard.hpp"
#include "mdc/ctrl/switch_agent.hpp"
#include "mdc/fault/fault_injector.hpp"
#include "mdc/scenario/megadc.hpp"

namespace mdc {
namespace {

TEST(CtrlPlane, ReliableChannelDeliversInline) {
  Simulation sim;
  ControlChannel channel{sim, 1};
  ASSERT_TRUE(channel.faults().reliable());

  bool delivered = false;
  channel.send(SwitchId{0}, [&] { delivered = true; });
  EXPECT_TRUE(delivered);  // synchronous: no sim step needed
  EXPECT_EQ(channel.messagesSent(), 1u);
  EXPECT_EQ(channel.messagesDropped(), 0u);

  channel.setPartitioned(SwitchId{0}, true);
  EXPECT_EQ(channel.partitionedLinks(), 1u);
  bool second = false;
  channel.send(SwitchId{0}, [&] { second = true; });
  sim.runUntil(10.0);
  EXPECT_FALSE(second);  // partitioned: dropped even on a reliable link
  EXPECT_EQ(channel.messagesDropped(), 1u);

  channel.setPartitioned(SwitchId{0}, false);
  EXPECT_EQ(channel.partitionedLinks(), 0u);
}

TEST(CtrlPlane, LossyChannelIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Simulation sim;
    ControlChannel channel{sim, seed};
    ChannelFaults faults;
    faults.dropRate = 0.3;
    faults.duplicateRate = 0.2;
    faults.reorderRate = 0.2;
    faults.delaySeconds = 0.05;
    faults.delayJitterSeconds = 0.1;
    channel.setFaults(faults);
    std::vector<std::pair<int, SimTime>> deliveries;
    for (int i = 0; i < 64; ++i) {
      channel.send(SwitchId{0},
                   [&deliveries, &sim, i] { deliveries.emplace_back(i, sim.now()); });
    }
    sim.runUntil(100.0);
    return std::make_tuple(deliveries, channel.messagesDropped(),
                           channel.messagesDuplicated(),
                           channel.messagesReordered());
  };
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_GT(std::get<1>(a), 0u);  // the fault model actually engaged
  EXPECT_EQ(a, b);                // and replays bit-identically
}

TEST(CtrlPlane, AgentAppliesDuplicateDeliveriesOnce) {
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  SwitchAgent agent{fleet, sw};
  std::vector<CommandAck> acks;
  const auto onAck = [&acks](const CommandAck& a) { acks.push_back(a); };

  const VipId vip{7};
  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = vip;
  cfg.app = AppId{1};
  cfg.seq = 0;
  agent.deliver(cfg, onAck);
  agent.deliver(cfg, onAck);  // duplicate: re-acked, not re-applied
  EXPECT_EQ(fleet.at(sw).vipCount(), 1u);

  SwitchCommand add;
  add.kind = CmdKind::AddRip;
  add.vip = vip;
  add.rip = RipEntry{RipId{3}, VmId{5}, VipId{}, 2.0};
  add.seq = 1;
  agent.deliver(add, onAck);
  agent.deliver(add, onAck);  // would be "rip_exists" if applied twice
  EXPECT_EQ(fleet.at(sw).ripCount(), 1u);

  SwitchCommand rem;
  rem.kind = CmdKind::RemoveRip;
  rem.vip = vip;
  rem.rip.rip = RipId{3};
  rem.seq = 2;
  agent.deliver(rem, onAck);
  agent.deliver(rem, onAck);  // would be "rip_unknown" if applied twice
  EXPECT_EQ(fleet.at(sw).ripCount(), 0u);

  ASSERT_EQ(acks.size(), 6u);
  for (const CommandAck& a : acks) EXPECT_TRUE(a.status.ok());
  EXPECT_EQ(agent.commandsApplied(), 3u);
  EXPECT_EQ(agent.duplicatesDropped(), 3u);

  // The sender's piggybacked watermark prunes the outcome cache, and a
  // duplicate older than the watermark is dropped without an ack (the
  // sender has already seen it acked).
  SwitchCommand next;
  next.kind = CmdKind::SetRipWeight;
  next.vip = vip;
  next.rip.rip = RipId{9};  // unknown: outcome is an error, still cached
  next.seq = 3;
  next.ackedBelow = 3;
  agent.deliver(next, onAck);
  EXPECT_EQ(agent.outcomeCacheSize(), 1u);  // seqs 0..2 pruned
  const std::size_t before = acks.size();
  agent.deliver(cfg, onAck);  // seq 0 < watermark: silent drop
  EXPECT_EQ(acks.size(), before);
  EXPECT_EQ(fleet.at(sw).vipCount(), 1u);
}

TEST(CtrlPlane, SenderRetriesUntilEveryCommandAppliesExactlyOnce) {
  Simulation sim;
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  ControlChannel channel{sim, 4242};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 0.5;
  opt.maxAttempts = 0;  // never give up
  CommandSender sender{sim, channel, fleet, opt};

  const VipId vip{1};
  // Install the VIP on the still-reliable channel, then turn the faults
  // on for the RIP burst (the bootstrap/steady-state split).
  int cfgDone = 0;
  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = vip;
  cfg.app = AppId{0};
  sender.send(sw, cfg, [&cfgDone](Status s) {
    ++cfgDone;
    EXPECT_TRUE(s.ok());
  });
  EXPECT_EQ(cfgDone, 1);  // reliable: round trip completed inline

  ChannelFaults faults;
  faults.dropRate = 0.4;
  faults.duplicateRate = 0.2;
  faults.reorderRate = 0.2;
  faults.delaySeconds = 0.02;
  faults.delayJitterSeconds = 0.05;
  channel.setFaults(faults);

  constexpr int kRips = 24;
  std::vector<int> fired(kRips, 0);
  for (int i = 0; i < kRips; ++i) {
    SwitchCommand add;
    add.kind = CmdKind::AddRip;
    add.vip = vip;
    add.rip = RipEntry{RipId{static_cast<RipId::value_type>(i)},
                       VmId{static_cast<VmId::value_type>(i)}, VipId{}, 1.0};
    sender.send(sw, add, [&fired, i](Status s) {
      ++fired[static_cast<std::size_t>(i)];
      EXPECT_TRUE(s.ok()) << s.error().code;
    });
    EXPECT_TRUE(sender.vipBusy(vip));
  }
  sim.runUntil(600.0);

  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], 1) << "rip " << i;
  }
  EXPECT_EQ(fleet.at(sw).ripCount(), static_cast<std::uint32_t>(kRips));
  EXPECT_GT(sender.retransmits(), 0u);
  EXPECT_GT(sender.agentOf(sw).duplicatesDropped(), 0u);
  EXPECT_EQ(sender.agentOf(sw).commandsApplied(), 1u + kRips);
  EXPECT_EQ(sender.inflight(), 0u);
  EXPECT_FALSE(sender.vipBusy(vip));

  // One more (reliable) command carries the everything-acked watermark,
  // pruning every older outcome: the cache is bounded by the in-flight
  // window, not by history.
  channel.setFaults(ChannelFaults{});
  SwitchCommand w;
  w.kind = CmdKind::SetRipWeight;
  w.vip = vip;
  w.rip.rip = RipId{0};
  w.weight = 3.0;
  sender.send(sw, w, [](Status s) { EXPECT_TRUE(s.ok()); });
  EXPECT_EQ(sender.agentOf(sw).outcomeCacheSize(), 1u);
}

TEST(CtrlPlane, PartitionedCommandTimesOutExactlyOnce) {
  Simulation sim;
  SwitchFleet fleet;
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  ControlChannel channel{sim, 5};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 0.5;
  opt.maxAttempts = 3;
  CommandSender sender{sim, channel, fleet, opt};
  channel.setPartitioned(sw, true);

  const VipId vip{1};
  int fired = 0;
  Status outcome;
  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = vip;
  cfg.app = AppId{0};
  sender.send(sw, cfg, [&](Status s) {
    ++fired;
    outcome = std::move(s);
  });
  sim.runUntil(120.0);

  EXPECT_EQ(fired, 1);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, "ctrl_timeout");
  EXPECT_EQ(sender.timeouts(), 1u);
  EXPECT_EQ(sender.inflight(), 0u);
  EXPECT_FALSE(sender.vipBusy(vip));
  EXPECT_FALSE(fleet.at(sw).hasVip(vip));  // never landed
}

TEST(CtrlPlane, InjectedPartitionHealsAndCommandLands) {
  Simulation sim;
  TopologyConfig tcfg;
  tcfg.numServers = 4;
  tcfg.numIsps = 2;
  tcfg.numSwitches = 2;
  Topology topo{tcfg};
  SwitchFleet fleet;
  for (int i = 0; i < 2; ++i) fleet.addSwitch(SwitchLimits{});
  HostFleet hosts{topo, sim, HostCostModel{}};
  FaultInjector injector{sim, topo, fleet, hosts, FaultInjector::Options{3}};

  ControlChannel channel{sim, 6};
  CommandSender::Options opt;
  opt.ackTimeoutSeconds = 0.5;
  opt.maxAttempts = 0;
  CommandSender sender{sim, channel, fleet, opt};
  injector.attachChannel(&channel);

  const SwitchId sw{0};
  injector.partitionChannel(sw, 1.0, /*repairAfter=*/10.0);
  sim.runUntil(2.0);
  ASSERT_TRUE(channel.isPartitioned(sw));
  ASSERT_EQ(injector.history().size(), 1u);
  EXPECT_EQ(injector.history().front().kind, FaultKind::ChannelPartition);

  int fired = 0;
  SwitchCommand cfg;
  cfg.kind = CmdKind::ConfigureVip;
  cfg.vip = VipId{1};
  cfg.app = AppId{0};
  sender.send(sw, cfg, [&fired](Status s) {
    ++fired;
    EXPECT_TRUE(s.ok());
  });
  sim.runUntil(10.5);
  EXPECT_EQ(fired, 0);  // still marooned behind the partition
  sim.runUntil(60.0);   // healed at t=11: a retransmit gets through
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(channel.isPartitioned(sw));
  EXPECT_EQ(injector.repairsApplied(), 1u);
  EXPECT_TRUE(fleet.at(sw).hasVip(VipId{1}));
  EXPECT_EQ(sender.agentOf(sw).commandsApplied(), 1u);
}

TEST(CtrlPlane, DoneGuardFiresExactlyOnceOnEveryPath) {
  int fired = 0;
  Status got;
  {
    DoneGuard g([&](Status s) {
      ++fired;
      got = std::move(s);
    });
    g.fire(Status::okStatus());
    g.fire(Status::fail("late"));  // no-op: already spent
    EXPECT_TRUE(g.fired());
  }
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(got.ok());

  // A dropped guard delivers the fallback from its destructor.
  {
    DoneGuard g([&](Status s) {
      ++fired;
      got = std::move(s);
    });
    DoneGuard copy = g;  // copies share the fire-at-most-once state
    (void)copy;
  }
  EXPECT_EQ(fired, 2);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, "request_dropped");

  DoneGuard null;  // default guard: fire is a safe no-op
  null.fire(Status::okStatus());
  EXPECT_TRUE(null.fired());
}

// --- anti-entropy reconciliation -----------------------------------------

std::pair<VipId, SwitchId> someIntendedVip(const IntentStore& intent,
                                           std::vector<VipId> excluding,
                                           bool wantRips) {
  VipId pick;
  SwitchId home;
  intent.forEach([&](VipId vip, const VipIntent& in) {
    if (pick.valid()) return;
    if (wantRips && in.rips.empty()) return;
    for (VipId ex : excluding) {
      if (ex == vip) return;
    }
    pick = vip;
    home = in.sw;
  });
  return {pick, home};
}

TEST(CtrlPlane, ReconcilerRepairsInjectedDrift) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(50.0);

  Reconciler& rec = dc.manager->reconciler();
  const IntentStore& intent = dc.manager->viprip().intent();
  const AppId anyApp = dc.apps.all().front().id;

  // 1. A stray VIP nobody intends (e.g. a timed-out command that landed
  //    after its VIP was deleted).
  const VipId stray{4242};
  ASSERT_TRUE(dc.fleet.applyConfigureVip(SwitchId{1}, stray, anyApp).ok());

  // 2. An intended VIP alive on a second switch (a retried restore that
  //    landed twice).
  const auto [dupVip, dupHome] = someIntendedVip(intent, {stray}, false);
  ASSERT_TRUE(dupVip.valid());
  const SwitchId other{dupHome == SwitchId{0} ? 1u : 0u};
  ASSERT_TRUE(
      dc.fleet.applyConfigureVip(other, dupVip, intent.find(dupVip)->app).ok());
  ASSERT_EQ(dc.fleet.hostsOf(dupVip).size(), 2u);

  // 3. An intended RIP missing from the actual table (a lost AddRip).
  const auto [thinVip, thinHome] =
      someIntendedVip(intent, {stray, dupVip}, true);
  ASSERT_TRUE(thinVip.valid());
  const RipId lostRip = intent.find(thinVip)->rips.front().rip;
  ASSERT_TRUE(dc.fleet.applyRemoveRip(thinHome, thinVip, lostRip).ok());

  // 4. An intended VIP missing entirely (a lost ConfigureVip).
  const auto [goneVip, goneHome] =
      someIntendedVip(intent, {stray, dupVip, thinVip}, true);
  ASSERT_TRUE(goneVip.valid());
  ASSERT_TRUE(dc.fleet.applyRemoveVip(goneHome, goneVip, true).ok());

  rec.auditRound();  // detects all four and repairs inline (reliable)
  EXPECT_GE(rec.driftByKind().at("stray_vip"), 1u);
  EXPECT_GE(rec.driftByKind().at("duplicate_vip"), 1u);
  EXPECT_GE(rec.driftByKind().at("missing_rip"), 1u);
  EXPECT_GE(rec.driftByKind().at("missing_vip"), 1u);
  EXPECT_GE(rec.repairsSucceeded(), 4u);

  EXPECT_TRUE(dc.fleet.hostsOf(stray).empty());
  EXPECT_EQ(dc.fleet.hostsOf(dupVip),
            std::vector<SwitchId>{dupHome});  // the unintended copy died
  const VipEntry* thin = dc.fleet.at(thinHome).findVip(thinVip);
  ASSERT_NE(thin, nullptr);
  EXPECT_NE(thin->findRip(lostRip), nullptr);
  EXPECT_EQ(dc.fleet.hostsOf(goneVip), std::vector<SwitchId>{goneHome});

  rec.auditRound();  // converged: nothing left to repair
  EXPECT_EQ(rec.divergenceLastRound(), 0u);
}

TEST(CtrlPlane, JournalRebuildSurvivesManagerCrash) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(60.0);

  VipRipManager& vm = dc.manager->viprip();
  const std::size_t vips = vm.intent().vipCount();
  ASSERT_GT(vips, 0u);
  ASSERT_GT(vm.intentJournal().size(), 0u);

  // Simulated manager crash: in-memory intent is lost and rebuilt from
  // the write-ahead journal alone.
  vm.rebuildIntentFromJournal();
  EXPECT_EQ(vm.intent().vipCount(), vips);

  // The rebuilt intent matches observable reality: one audit adopts any
  // balancer-written weights, the next finds zero drift.
  Reconciler& rec = dc.manager->reconciler();
  rec.auditRound();
  rec.auditRound();
  EXPECT_EQ(rec.divergenceLastRound(), 0u);

  // And the rebuilt manager still takes requests (id allocators were
  // advanced past every journaled id, so nothing collides).
  int fired = 0;
  VipRipRequest req;
  req.op = VipRipOp::NewVip;
  req.app = dc.apps.all().front().id;
  req.done = [&fired](Status s) {
    ++fired;
    EXPECT_TRUE(s.ok()) << s.error().code;
  };
  vm.submit(std::move(req));
  dc.runUntil(dc.sim.now() + 10.0);
  EXPECT_EQ(fired, 1);

  dc.runUntil(dc.sim.now() + 30.0);
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.9);
}

TEST(CtrlPlane, LossyScenarioConvergesToZeroDrift) {
  MegaDcConfig cfg = testScaleConfig();
  cfg.ctrlFaults.dropRate = 0.2;
  cfg.ctrlFaults.duplicateRate = 0.2;
  cfg.ctrlFaults.reorderRate = 0.2;
  cfg.ctrlFaults.delaySeconds = 0.05;
  cfg.ctrlFaults.delayJitterSeconds = 0.1;
  cfg.manager.viprip.ctrl.ackTimeoutSeconds = 1.0;
  cfg.manager.reconciler.periodSeconds = 10.0;
  MegaDc dc{cfg};
  dc.bootstrap();  // bootstrap runs on the still-reliable channel
  dc.runUntil(100.0);

  // Turbulence: a crash (restores traverse the lossy channel) and a
  // control partition (commands maroon, time out, reconciler cleans up).
  dc.faults->crashSwitch(SwitchId{0}, 100.5, /*repairAfter=*/20.0);
  dc.faults->partitionChannel(SwitchId{1}, 110.0, /*repairAfter=*/15.0);

  // Requests submitted into the storm: every done fires exactly once.
  std::vector<int> fired(3, 0);
  const Application& app = dc.apps.all().front();
  {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app.id;
    req.done = [&fired](Status) { ++fired[0]; };
    dc.manager->viprip().submit(std::move(req));
  }
  ASSERT_FALSE(app.instances.empty());
  {
    VipRipRequest req;
    req.op = VipRipOp::SetWeight;
    req.vm = app.instances.front();
    req.weight = 2.0;
    req.done = [&fired](Status) { ++fired[1]; };
    dc.manager->viprip().submit(std::move(req));
  }
  {
    VipRipRequest req;
    req.op = VipRipOp::NewRip;
    req.app = app.id;
    req.vm = app.instances.front();
    req.weight = 1.0;
    req.done = [&fired](Status) { ++fired[2]; };
    dc.manager->viprip().submit(std::move(req));
  }

  dc.runUntil(300.0);
  const ControlChannel& channel = dc.manager->viprip().ctrlChannel();
  const CommandSender& sender = dc.manager->viprip().ctrlSender();
  EXPECT_GT(channel.messagesDropped(), 0u);
  EXPECT_GT(sender.retransmits(), 0u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], 1) << "request " << i;
  }

  // Bounded convergence: within a bounded number of audit rounds the
  // reconciler reports intended == actual with nothing in flight.
  const Reconciler& rec = dc.manager->reconciler();
  bool converged = false;
  for (int round = 0; round < 40 && !converged; ++round) {
    dc.runUntil(dc.sim.now() + cfg.manager.reconciler.periodSeconds);
    converged = rec.divergenceLastRound() == 0 && sender.inflight() == 0;
  }
  EXPECT_TRUE(converged) << "still " << rec.divergenceLastRound()
                         << " divergent entries after bounded rounds";

  // After reconciliation no VIP is live on two switches, and nothing
  // stayed orphaned.
  EXPECT_EQ(dc.fleet.pendingOrphans(), 0u);
  for (const Application& a : dc.apps.all()) {
    for (VipId vip : a.vips) {
      EXPECT_LE(dc.fleet.hostsOf(vip).size(), 1u) << "vip " << vip.value();
    }
  }
  const EpochReport& r = dc.engine->latest();
  EXPECT_GT(r.totalServedRps() / r.totalDemandRps(), 0.85);
  EXPECT_GT(r.ctrlRetransmits, 0u);  // the epoch report carries the gauges
}

TEST(CtrlPlane, HoldDownDampsFlappingSwitch) {
  MegaDcConfig cfg = testScaleConfig();
  cfg.health.holdDownSeconds = 20.0;
  MegaDc dc{cfg};
  dc.bootstrap();
  dc.runUntil(100.0);

  const SwitchId victim{0};
  std::size_t hosted = 0;
  for (const Application& a : dc.apps.all()) {
    for (VipId vip : a.vips) {
      if (dc.fleet.ownerOf(vip) == victim) ++hosted;
    }
  }
  ASSERT_GT(hosted, 0u);

  // Flap: crash, reboot, crash again while the first declaration's
  // hold-down is still running.  Without damping the second down-spell
  // would be declared the moment it hits the missed threshold.
  dc.faults->crashSwitch(victim, 100.6, /*repairAfter=*/5.8);
  dc.faults->crashSwitch(victim, 107.0, /*repairAfter=*/40.0);
  dc.runUntil(130.0);

  EXPECT_EQ(dc.health->switchFailuresDetected(), 2u);
  EXPECT_GT(dc.health->flapSuppressions(), 0u);  // deferred, not dropped
  EXPECT_EQ(dc.health->vipsRestored(), hosted);
  EXPECT_EQ(dc.fleet.pendingOrphans(), 0u);
}

TEST(CtrlPlane, RepairInsideHoldDownNeitherRedeclaresNorLeaks) {
  MegaDcConfig cfg = testScaleConfig();
  cfg.health.holdDownSeconds = 30.0;
  MegaDc dc{cfg};
  dc.bootstrap();
  dc.runUntil(100.0);

  const SwitchId victim{0};
  std::size_t hosted = 0;
  for (const Application& a : dc.apps.all()) {
    for (VipId vip : a.vips) {
      if (dc.fleet.ownerOf(vip) == victim) ++hosted;
    }
  }
  ASSERT_GT(hosted, 0u);

  // Crash at 100.6 -> declared at ~104.5, hold-down runs to ~134.5.  The
  // repair lands at 125.6, *inside* the window.
  dc.faults->crashSwitch(victim, 100.6, /*repairAfter=*/25.0);
  dc.runUntil(126.0);
  EXPECT_TRUE(dc.fleet.isUp(victim));
  EXPECT_EQ(dc.health->switchFailuresDetected(), 1u);
  EXPECT_EQ(dc.health->vipsRestored(), hosted);

  // Through the hold-down expiry: a switch repaired inside its window
  // must not be re-declared failed when the window lapses (that would
  // re-submit recovery for a healthy switch), and the orphan bookkeeping
  // must not retain a stale batch.
  dc.runUntil(160.0);
  EXPECT_EQ(dc.health->switchFailuresDetected(), 1u);
  EXPECT_EQ(dc.health->vipsRestored(), hosted);
  EXPECT_EQ(dc.fleet.pendingOrphans(), 0u);

  // And detection re-armed: a fresh crash after the window is declared
  // within the ordinary detection bound, not suppressed by leftover
  // hold-down state.
  dc.faults->crashSwitch(victim, 165.0, /*repairAfter=*/40.0);
  dc.runUntil(165.0 + dc.health->detectionDelayBound() + 1.0);
  EXPECT_EQ(dc.health->switchFailuresDetected(), 2u);
  dc.runUntil(260.0);
  EXPECT_EQ(dc.fleet.pendingOrphans(), 0u);
}

TEST(CtrlPlane, RetryBackoffJitterStaysInWindowAndIsSeedDeterministic) {
  // Every retransmit gap must land inside the jitter window
  // [(1-j), (1+j)] x nominal backoff, and the whole retry timeline must
  // be a pure function of the jitter seed.
  auto run = [](std::uint64_t jitterSeed) {
    Simulation sim;
    SwitchFleet fleet;
    const SwitchId sw = fleet.addSwitch(SwitchLimits{});
    ControlChannel channel{sim, 7};
    Tracer tracer{sim, Tracer::Options{1u << 12, true}};
    CommandSender::Options opt;
    opt.ackTimeoutSeconds = 1.0;
    opt.maxBackoffSeconds = 8.0;
    opt.maxAttempts = 6;
    opt.backoffJitter = 0.1;
    opt.jitterSeed = jitterSeed;
    CommandSender sender{sim, channel, fleet, opt};
    sender.setTracer(&tracer);
    channel.setPartitioned(sw, true);  // every attempt is lost

    SwitchCommand cfg;
    cfg.kind = CmdKind::ConfigureVip;
    cfg.vip = VipId{1};
    cfg.app = AppId{0};
    cfg.trace = tracer.begin();
    sender.send(sw, cfg, [](Status) {});
    sim.runUntil(300.0);

    std::vector<double> at;
    for (const TraceEvent& e : tracer.ring().snapshot()) {
      if (e.hop == HopKind::CmdTransmit) at.push_back(e.at);
    }
    return at;
  };

  const auto at = run(0xfeedf00dull);
  ASSERT_EQ(at.size(), 6u);  // maxAttempts transmits, then ctrl_timeout
  for (std::size_t k = 0; k + 1 < at.size(); ++k) {
    const double nominal =
        std::min(8.0, std::pow(2.0, static_cast<double>(k)));
    const double gap = at[k + 1] - at[k];
    EXPECT_GE(gap, nominal * 0.9 - 1e-12) << "attempt " << k;
    EXPECT_LE(gap, nominal * 1.1 + 1e-12) << "attempt " << k;
    EXPECT_NE(gap, nominal);  // the jitter actually engaged
  }
  EXPECT_EQ(run(0xfeedf00dull), at);  // fixed seed: bit-identical replay
  EXPECT_NE(run(0x12345678ull), at);  // a different seed moves the draws
}

}  // namespace
}  // namespace mdc
