// Unit tests for time series, histograms, and the table renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "mdc/metrics/histogram.hpp"
#include "mdc/metrics/table.hpp"
#include "mdc/metrics/timeseries.hpp"

namespace mdc {
namespace {

TEST(TimeSeries, RecordAndQuery) {
  TimeSeries ts{"util"};
  ts.record(0.0, 1.0);
  ts.record(1.0, 3.0);
  ts.record(2.0, 2.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.last(), 2.0);
  EXPECT_DOUBLE_EQ(ts.maxValue(), 3.0);
  EXPECT_DOUBLE_EQ(ts.minValue(), 1.0);
  EXPECT_DOUBLE_EQ(ts.meanValue(), 2.0);
}

TEST(TimeSeries, RejectsOutOfOrder) {
  TimeSeries ts;
  ts.record(5.0, 1.0);
  EXPECT_THROW(ts.record(4.0, 1.0), PreconditionError);
  ts.record(5.0, 2.0);  // equal time allowed
}

TEST(TimeSeries, EmptyQueriesThrow) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_THROW((void)ts.last(), PreconditionError);
  EXPECT_THROW((void)ts.timeWeightedMean(), PreconditionError);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.record(0.0, 1.0);   // holds 1.0 over [0, 10)
  ts.record(10.0, 3.0);  // endpoint
  EXPECT_DOUBLE_EQ(ts.timeWeightedMean(), 1.0);
  ts.record(20.0, 3.0);
  // 1.0 over [0,10), 3.0 over [10,20) -> 2.0
  EXPECT_DOUBLE_EQ(ts.timeWeightedMean(), 2.0);
}

TEST(TimeSeries, SettleTime) {
  TimeSeries ts;
  ts.record(0.0, 5.0);
  ts.record(1.0, 0.5);
  ts.record(2.0, 4.0);  // bounced back up
  ts.record(3.0, 0.8);
  ts.record(4.0, 0.2);
  EXPECT_DOUBLE_EQ(ts.settleTime(1.0), 3.0);
  EXPECT_DOUBLE_EQ(ts.settleTime(10.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.settleTime(0.1), -1.0);
}

TEST(Histogram, CountsAndMean) {
  Histogram h{0.001, 100.0};
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.meanValue(), 2.0);
  EXPECT_DOUBLE_EQ(h.minRecorded(), 1.0);
  EXPECT_DOUBLE_EQ(h.maxRecorded(), 3.0);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h{0.001, 1000.0, 128};
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.1);
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(p50, 50.0, 5.0);
  EXPECT_NEAR(p99, 99.0, 8.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h{1.0, 10.0, 4};
  h.record(0.5);
  h.record(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, BulkRecord) {
  Histogram h{0.1, 10.0};
  h.record(1.0, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  h.record(2.0, 0);  // no-op
  EXPECT_EQ(h.count(), 10u);
}

TEST(Histogram, Preconditions) {
  EXPECT_THROW((Histogram{0.0, 1.0}), PreconditionError);
  EXPECT_THROW((Histogram{2.0, 1.0}), PreconditionError);
  EXPECT_THROW((Histogram{1.0, 2.0, 1}), PreconditionError);
  Histogram h{1.0, 2.0};
  EXPECT_THROW((void)h.quantile(0.5), PreconditionError);
  EXPECT_THROW(h.record(-1.0), PreconditionError);
}

TEST(Table, RendersAlignedText) {
  Table t{"Demo", {"name", "count"}};
  t.addRow({std::string{"alpha"}, static_cast<long long>(3)});
  t.addRow({std::string{"b"}, static_cast<long long>(12345)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t{"T", {"a", "b"}};
  EXPECT_THROW(t.addRow({std::string{"only-one"}}), PreconditionError);
}

TEST(Table, CsvEscapesSpecials) {
  Table t{"T", {"a", "b"}};
  t.addRow({std::string{"x,y"}, std::string{"quo\"te"}});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"quo\"\"te\"\n");
}

TEST(Table, FormatCellScientificForExtremes) {
  EXPECT_EQ(Table::formatCell(Cell{1.5}), "1.500");
  EXPECT_EQ(Table::formatCell(Cell{static_cast<long long>(7)}), "7");
  const std::string big = Table::formatCell(Cell{3.0e12});
  EXPECT_NE(big.find('e'), std::string::npos);
}

}  // namespace
}  // namespace mdc
