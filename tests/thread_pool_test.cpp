// Edge-case and stress coverage for the epoch engine's worker pool:
// degenerate job counts, the nested-fork refusal, the static-range
// dispatch, and a randomized stress test asserting that per-worker
// accumulator partitions merged in slot order reproduce the sequential
// addition sequence bit-for-bit at every worker count — the exact
// protocol the fluid engine's emission phase is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <vector>

#include "mdc/util/expect.hpp"
#include "mdc/util/thread_pool.hpp"

namespace mdc {
namespace {

TEST(ThreadPoolEdge, FewerJobsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolEdge, ZeroJobsIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.parallelFor(0, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 0);
  pool.parallelRanges(0, [&](unsigned, std::size_t, std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 0);
  // The pool stays usable after empty rounds.
  pool.parallelFor(5, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolEdge, NestedParallelForIsRefused) {
  ThreadPool pool(4);
  std::atomic<int> refused{0};
  pool.parallelFor(8, [&](std::size_t) {
    try {
      pool.parallelFor(2, [](std::size_t) {});
    } catch (const PreconditionError&) {
      refused++;
    }
  });
  EXPECT_EQ(refused.load(), 8);
  // Refusal from inside the inline (single-worker) path as well.
  ThreadPool solo(1);
  EXPECT_THROW(solo.parallelFor(
                   1, [&](std::size_t) { solo.parallelFor(1, [](std::size_t) {}); }),
               PreconditionError);
  // And the refusing pool remains healthy.
  std::atomic<int> ran{0};
  pool.parallelFor(16, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolEdge, ParallelRangesCoversEveryItemExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t items : {1ul, 3ul, 4ul, 5ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(items);
    std::atomic<unsigned> maxSlot{0};
    pool.parallelRanges(items, [&](unsigned slot, std::size_t lo,
                                   std::size_t hi) {
      ASSERT_LT(lo, hi);  // no empty ranges are dispatched
      unsigned seen = maxSlot.load();
      while (slot > seen && !maxSlot.compare_exchange_weak(seen, slot)) {
      }
      for (std::size_t i = lo; i < hi; ++i) hits[i]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // Slots are dense in [0, min(workers, items)).
    EXPECT_LT(maxSlot.load(), std::min<std::size_t>(4, items));
  }
}

TEST(ThreadPoolEdge, ParallelRangesAreContiguousAscending) {
  ThreadPool pool(1);  // inline: ranges arrive in slot order
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallelRanges(10, [&](unsigned, std::size_t lo, std::size_t hi) {
    ranges.emplace_back(lo, hi);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 10}));
}

// The merge protocol the epoch engine relies on: workers accumulate
// (slot, value) pairs into per-slot-private ordered buffers over static
// contiguous ranges; buffers applied in slot order replay the sequential
// addition sequence exactly, so the result is bit-identical to a single
// thread's — for ANY worker count, 50 randomized epochs long.
TEST(ThreadPoolStress, DeterministicPartitionMergeAcrossWorkerCounts) {
  constexpr std::size_t kAccumulators = 64;
  constexpr std::size_t kItems = 4096;
  constexpr int kEpochs = 50;

  std::mt19937 rng(0xACC);
  std::uniform_int_distribution<std::uint32_t> slotDist(0, kAccumulators - 1);
  std::uniform_real_distribution<double> valDist(1e-6, 1e6);

  // Per-epoch randomized work: item -> (accumulator slot, addend).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> epochs(kEpochs);
  for (auto& items : epochs) {
    items.resize(kItems);
    for (auto& [slot, val] : items) {
      slot = slotDist(rng);
      val = valDist(rng);
    }
  }

  const auto run = [&](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<double> acc(kAccumulators, 0.0);
    for (const auto& items : epochs) {
      // Each worker emits its contiguous range into a private ordered
      // buffer (never touching acc), then the buffers merge in slot-index
      // order — concatenation order == item order.
      std::vector<std::vector<std::pair<std::uint32_t, double>>> part(
          pool.workers());
      pool.parallelRanges(items.size(), [&](unsigned slot, std::size_t lo,
                                            std::size_t hi) {
        auto& out = part[slot];
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) out.push_back(items[i]);
      });
      for (const auto& p : part) {
        for (const auto& [slot, val] : p) acc[slot] += val;
      }
    }
    return acc;
  };

  const std::vector<double> ref = run(1);
  for (const unsigned workers : {2u, 8u}) {
    const std::vector<double> got = run(workers);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(got[i], ref[i]) << "accumulator " << i << " diverged at "
                                << workers << " workers";
    }
  }
}

}  // namespace
}  // namespace mdc
