// Tests that the provisioning arithmetic reproduces the paper's published
// numbers exactly (§III-B, §V-A).
#include <gtest/gtest.h>

#include "mdc/core/provisioning.hpp"

namespace mdc {
namespace {

SwitchLimits catalyst() {
  SwitchLimits lim;  // defaults are the paper's Catalyst parameters
  return lim;
}

TEST(Provisioning, PaperTwoVipCase) {
  // §III-B: 300,000 apps x 2 VIPs / 4,000 VIPs per switch = 150 switches,
  // about 600 Gbps aggregate.
  ProvisioningDemand d;
  d.applications = 300'000;
  d.vipsPerApp = 2.0;
  d.ripsPerApp = 0.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 150u);
  EXPECT_DOUBLE_EQ(aggregateGbps(150, catalyst()), 600.0);
}

TEST(Provisioning, PaperThreeVipTwentyRipCase) {
  // §V-A: max(300k*3/4000, 300k*20/16000) = max(225, 375) = 375 switches.
  ProvisioningDemand d;  // defaults: 300k apps, 3 VIPs, 20 RIPs
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 225u);
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 375u);
  EXPECT_EQ(minSwitches(d, catalyst()), 375u);
}

TEST(Provisioning, TargetScaleNeedsAtLeast300kVipsAnd6MRips) {
  // §II: 300,000 VIPs (1/app) and 6M RIPs (20/app).
  ProvisioningDemand d;
  d.vipsPerApp = 1.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 75u);   // 300k/4k
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 375u);  // 6M/16k
}

TEST(Provisioning, CeilingNotFloor) {
  ProvisioningDemand d;
  d.applications = 4001;
  d.vipsPerApp = 1.0;
  d.ripsPerApp = 1.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 2u);
}

TEST(Provisioning, StateSpaceIsAstronomical) {
  ProvisioningDemand d;  // 300k apps, 3 VIPs
  const double literal = log10PlacementStatesLiteral(d, 400);
  const double paper = log10PlacementStatesPaper(d, 400);
  // Literal: 900k VIPs x log10(400) ~ 2.3M digits.
  EXPECT_GT(literal, 1e6);
  // Paper's A^(L*k): 1200 * log10(300k) ~ 6575 digits.
  EXPECT_GT(paper, 6000.0);
  EXPECT_LT(paper, 7000.0);
}

TEST(Provisioning, LbLayerNotBottleneckAtTwentyPercent) {
  // §III-B: external traffic is ~20% of total; 150 switches offer
  // 600 Gbps, enough for 3 Tbps total traffic.
  const auto check = lbLayerBottleneck(3000.0, 0.2, 150, catalyst());
  EXPECT_DOUBLE_EQ(check.externalGbps, 600.0);
  EXPECT_DOUBLE_EQ(check.aggregateGbps, 600.0);
  EXPECT_FALSE(check.bottleneck);
}

TEST(Provisioning, LbLayerBottleneckWhenExternalShareGrows) {
  const auto check = lbLayerBottleneck(3000.0, 0.4, 150, catalyst());
  EXPECT_TRUE(check.bottleneck);
}

TEST(Provisioning, Validation) {
  ProvisioningDemand d;
  SwitchLimits zero = catalyst();
  zero.maxVips = 0;
  EXPECT_THROW((void)minSwitchesForVips(d, zero), PreconditionError);
  EXPECT_THROW((void)lbLayerBottleneck(1.0, 1.5, 1, catalyst()),
               PreconditionError);
  EXPECT_THROW((void)log10PlacementStatesLiteral(d, 0), PreconditionError);
}

}  // namespace
}  // namespace mdc
