// Tests that the provisioning arithmetic reproduces the paper's published
// numbers exactly (§III-B, §V-A).
#include <gtest/gtest.h>

#include "mdc/core/provisioning.hpp"

namespace mdc {
namespace {

SwitchLimits catalyst() {
  SwitchLimits lim;  // defaults are the paper's Catalyst parameters
  return lim;
}

TEST(Provisioning, PaperTwoVipCase) {
  // §III-B: 300,000 apps x 2 VIPs / 4,000 VIPs per switch = 150 switches,
  // about 600 Gbps aggregate.
  ProvisioningDemand d;
  d.applications = 300'000;
  d.vipsPerApp = 2.0;
  d.ripsPerApp = 0.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 150u);
  EXPECT_DOUBLE_EQ(aggregateGbps(150, catalyst()), 600.0);
}

TEST(Provisioning, PaperThreeVipTwentyRipCase) {
  // §V-A: max(300k*3/4000, 300k*20/16000) = max(225, 375) = 375 switches.
  ProvisioningDemand d;  // defaults: 300k apps, 3 VIPs, 20 RIPs
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 225u);
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 375u);
  EXPECT_EQ(minSwitches(d, catalyst()), 375u);
}

TEST(Provisioning, TargetScaleNeedsAtLeast300kVipsAnd6MRips) {
  // §II: 300,000 VIPs (1/app) and 6M RIPs (20/app).
  ProvisioningDemand d;
  d.vipsPerApp = 1.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 75u);   // 300k/4k
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 375u);  // 6M/16k
}

TEST(Provisioning, CeilingNotFloor) {
  ProvisioningDemand d;
  d.applications = 4001;
  d.vipsPerApp = 1.0;
  d.ripsPerApp = 1.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 2u);
}

TEST(Provisioning, StateSpaceIsAstronomical) {
  ProvisioningDemand d;  // 300k apps, 3 VIPs
  const double literal = log10PlacementStatesLiteral(d, 400);
  const double paper = log10PlacementStatesPaper(d, 400);
  // Literal: 900k VIPs x log10(400) ~ 2.3M digits.
  EXPECT_GT(literal, 1e6);
  // Paper's A^(L*k): 1200 * log10(300k) ~ 6575 digits.
  EXPECT_GT(paper, 6000.0);
  EXPECT_LT(paper, 7000.0);
}

TEST(Provisioning, LbLayerNotBottleneckAtTwentyPercent) {
  // §III-B: external traffic is ~20% of total; 150 switches offer
  // 600 Gbps, enough for 3 Tbps total traffic.
  const auto check = lbLayerBottleneck(3000.0, 0.2, 150, catalyst());
  EXPECT_DOUBLE_EQ(check.externalGbps, 600.0);
  EXPECT_DOUBLE_EQ(check.aggregateGbps, 600.0);
  EXPECT_FALSE(check.bottleneck);
}

TEST(Provisioning, LbLayerBottleneckWhenExternalShareGrows) {
  const auto check = lbLayerBottleneck(3000.0, 0.4, 150, catalyst());
  EXPECT_TRUE(check.bottleneck);
}

TEST(Provisioning, E2ShapeRipConstraintCrossesOverAtFourRipsPerVip) {
  // maxRips/maxVips = 4, so with k VIPs/app the RIP constraint takes over
  // exactly at r = 4k.  The paper's E2 point (k=3, r=20) sits firmly on
  // the RIP-bound side of that crossover.
  ProvisioningDemand d;  // 300k apps, k = 3
  d.ripsPerApp = 12.0;   // r = 4k: the two constraints tie
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 225u);
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 225u);
  EXPECT_EQ(minSwitches(d, catalyst()), 225u);
  d.ripsPerApp = 8.0;    // below crossover: VIP tables bind
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 150u);
  EXPECT_EQ(minSwitches(d, catalyst()), 225u);
  d.ripsPerApp = 20.0;   // E2's published point: RIP tables bind
  EXPECT_EQ(minSwitches(d, catalyst()), 375u);
  EXPECT_DOUBLE_EQ(aggregateGbps(375, catalyst()), 1500.0);
}

TEST(Provisioning, ZeroAppDataCenterNeedsNoSwitches) {
  ProvisioningDemand d;
  d.applications = 0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 0u);
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 0u);
  EXPECT_EQ(minSwitches(d, catalyst()), 0u);
  EXPECT_DOUBLE_EQ(aggregateGbps(0, catalyst()), 0.0);
}

TEST(Provisioning, SingleSwitchFleetIsExactlyFullAtDatasheetRatios) {
  // 1,000 apps x 4 VIPs x 16 RIPs saturate one Catalyst on both tables
  // at once; one more app of the same shape forces a second switch.
  ProvisioningDemand d;
  d.applications = 1000;
  d.vipsPerApp = 4.0;
  d.ripsPerApp = 16.0;
  EXPECT_EQ(minSwitchesForVips(d, catalyst()), 1u);
  EXPECT_EQ(minSwitchesForRips(d, catalyst()), 1u);
  EXPECT_EQ(minSwitches(d, catalyst()), 1u);
  d.applications = 1001;
  EXPECT_EQ(minSwitches(d, catalyst()), 2u);
}

TEST(Provisioning, RealSwitchTablesFillToTheExactLimitsThenReject) {
  // The arithmetic above must agree with the device model it plans for:
  // a real LbSwitch accepts exactly 4,000 VIPs and 16,000 RIPs, then
  // rejects with the branchable table-full codes.
  LbSwitch sw{SwitchId{0}, catalyst()};
  for (std::uint32_t v = 0; v < 4000; ++v) {
    ASSERT_TRUE(sw.configureVip(VipId{v}, AppId{v / 4}).ok());
    for (std::uint32_t r = 0; r < 4; ++r) {
      RipEntry e;
      e.rip = RipId{v * 4 + r};
      e.vm = VmId{v * 4 + r};
      ASSERT_TRUE(sw.addRip(VipId{v}, e).ok());
    }
  }
  EXPECT_EQ(sw.vipCount(), 4000u);
  EXPECT_EQ(sw.ripCount(), 16000u);
  EXPECT_EQ(sw.spareVips(), 0u);
  EXPECT_EQ(sw.spareRips(), 0u);

  EXPECT_EQ(sw.configureVip(VipId{4000}, AppId{1000}).error().code,
            "vip_table_full");
  RipEntry extra;
  extra.rip = RipId{16000};
  extra.vm = VmId{16000};
  EXPECT_EQ(sw.addRip(VipId{0}, extra).error().code, "rip_table_full");

  // Freeing one row reopens exactly one slot.
  ASSERT_TRUE(sw.removeRip(VipId{0}, RipId{0}).ok());
  EXPECT_EQ(sw.spareRips(), 1u);
  EXPECT_TRUE(sw.addRip(VipId{0}, extra).ok());
  EXPECT_EQ(sw.spareRips(), 0u);
}

TEST(Provisioning, Validation) {
  ProvisioningDemand d;
  SwitchLimits zero = catalyst();
  zero.maxVips = 0;
  EXPECT_THROW((void)minSwitchesForVips(d, zero), PreconditionError);
  EXPECT_THROW((void)lbLayerBottleneck(1.0, 1.5, 1, catalyst()),
               PreconditionError);
  EXPECT_THROW((void)log10PlacementStatesLiteral(d, 0), PreconditionError);
}

}  // namespace
}  // namespace mdc
