// Tests for the sharded session data plane: arrival/expiry mechanics,
// connection affinity under VIP transfer (§IV-B), the randomized
// serialized-vs-sharded equivalence suite, drain-curve properties across
// DNS TTLs, and the rejection taxonomy / global-cap plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "mdc/scenario/megadc.hpp"
#include "mdc/scenario/session_engine.hpp"
#include "mdc/state/codec.hpp"

namespace mdc {
namespace {

double weightOf(const AuthoritativeDns& dns, AppId app, VipId vip) {
  for (const VipWeight& w : dns.vips(app)) {
    if (w.vip == vip) return w.weight;
  }
  return -1.0;
}

struct Fixture {
  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers;
  SwitchFleet fleet;
  StaticDemand demand{{10'000.0}};
  AppId app;
  VipId vip{100};
  SwitchId swA, swB;

  explicit Fixture(SwitchLimits limits = SwitchLimits{},
                   ResolverConfig rc = ResolverConfig{})
      : resolvers{dns, rc} {
    app = apps.create("web", AppSla{}, 10'000.0);
    swA = fleet.addSwitch(limits);
    swB = fleet.addSwitch(limits);
    EXPECT_TRUE(fleet.configureVip(swA, vip, app).ok());
    RipEntry rip;
    rip.rip = RipId{0};
    rip.vm = VmId{0};
    EXPECT_TRUE(fleet.addRip(vip, rip).ok());
    dns.registerApp(app);
    dns.addVip(app, vip, 1.0);
  }

  SessionEngine::Options options() {
    SessionEngine::Options o;
    o.sessionsPerSecondPerKrps = 1.0;  // 10 sessions/s at 10 krps
    o.meanSessionSeconds = 20.0;
    o.tick = 1.0;
    o.seed = 5;
    return o;
  }

  SessionEngine make(SessionEngine::Options o) {
    return SessionEngine{sim, apps, demand, dns, resolvers, fleet, o};
  }
};

TEST(SessionEngine, SessionsArriveAndTrackOnSwitch) {
  Fixture f;
  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(30.0);
  EXPECT_GT(engine.totalArrivals(), 200u);
  EXPECT_GT(engine.activeSessions(), 0u);
  EXPECT_EQ(engine.rejectedSessions(), 0u);
  EXPECT_EQ(f.fleet.at(f.swA).activeConnections(), engine.activeSessions());
  EXPECT_EQ(engine.shardOf(f.swA).size(), engine.activeSessions());
}

TEST(SessionEngine, SessionsCompleteOverTime) {
  Fixture f;
  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(200.0);
  EXPECT_GT(engine.completedSessions(), 0u);
  EXPECT_EQ(engine.brokenSessions(), 0u);
  // Little's law sanity: active ~ rate * duration = 10/s * 20 s = 200.
  EXPECT_NEAR(static_cast<double>(engine.activeSessions()), 200.0, 80.0);
}

TEST(SessionEngine, ConservationHoldsEveryEpoch) {
  Fixture f;
  SessionEngine engine = f.make(f.options());
  engine.start();
  for (double t = 1.0; t <= 120.0; t += 1.0) {
    f.sim.runUntil(t);
    ASSERT_EQ(engine.totalArrivals(),
              engine.activeSessions() + engine.completedSessions() +
                  engine.brokenSessions() + engine.rejectedSessions());
  }
}

TEST(SessionEngine, TransferRefusedWhileSessionsActive) {
  Fixture f;
  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(30.0);
  ASSERT_GT(f.fleet.at(f.swA).activeConnections(f.vip), 0u);
  EXPECT_EQ(f.fleet.transferVip(f.vip, f.swB).error().code, "vip_in_use");
}

TEST(SessionEngine, ForcedTransferBreaksSessions) {
  Fixture f;
  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(30.0);
  const auto inFlight = f.fleet.at(f.swA).activeConnections(f.vip);
  ASSERT_GT(inFlight, 0u);
  ASSERT_TRUE(engine.forceTransfer(f.vip, f.swB).ok());
  EXPECT_EQ(f.fleet.droppedConnections(), inFlight);
  EXPECT_EQ(engine.brokenSessions(), inFlight);
  EXPECT_EQ(f.fleet.at(f.swA).activeConnections(f.vip), 0u);
}

TEST(SessionEngine, DrainViaDnsThenTransferCleanly) {
  // The paper's drain recipe by hand: stop exposing the VIP, wait for
  // sessions to finish, then transfer with zero affinity violations.
  // A TTL-compliant population only — lingering clients (1800 s time
  // constant) would keep a trickle on the old VIP for hours.
  ResolverConfig compliant;
  compliant.lingerFraction = 0.0;
  Fixture f{SwitchLimits{}, compliant};
  // Add a second VIP so clients have somewhere else to go.
  const VipId vip2{101};
  ASSERT_TRUE(f.fleet.configureVip(f.swB, vip2, f.app).ok());
  RipEntry rip;
  rip.rip = RipId{1};
  rip.vm = VmId{1};
  ASSERT_TRUE(f.fleet.addRip(vip2, rip).ok());
  f.dns.addVip(f.app, vip2, 1.0);

  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(30.0);
  ASSERT_GT(f.fleet.at(f.swA).activeConnections(f.vip), 0u);

  f.dns.setWeight(f.app, f.vip, 0.0);  // selective exposure away
  // Old sessions finish (mean 20 s); new ones go to vip2 as resolver
  // caches expire.  After several TTLs + session lifetimes it quiesces.
  f.sim.runUntil(2000.0);
  EXPECT_EQ(f.fleet.at(f.swA).activeConnections(f.vip), 0u);
  ASSERT_TRUE(f.fleet.transferVip(f.vip, f.swB).ok());
  EXPECT_EQ(engine.brokenSessions(), 0u);
  EXPECT_EQ(f.fleet.droppedConnections(), 0u);
}

TEST(SessionEngine, RejectsWhenNoVipExposed) {
  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers{dns, ResolverConfig{}};
  SwitchFleet fleet;
  StaticDemand demand{{1000.0}};
  const AppId app = apps.create("a", AppSla{}, 1000.0);
  dns.registerApp(app);  // registered but no VIPs

  SessionEngine::Options o;
  o.sessionsPerSecondPerKrps = 5.0;
  SessionEngine engine{sim, apps, demand, dns, resolvers, fleet, o};
  engine.start();
  sim.runUntil(10.0);
  EXPECT_GT(engine.totalArrivals(), 0u);
  EXPECT_EQ(engine.rejectedSessions(), engine.totalArrivals());
  EXPECT_EQ(engine.rejectedFor(SessionReject::NoVip), engine.totalArrivals());
  EXPECT_EQ(engine.rejectedForApp(app), engine.totalArrivals());
}

TEST(SessionEngine, CapRejectionsCountedPerReasonAndApp) {
  Fixture f;
  SessionEngine::Options o = f.options();
  o.maxActiveSessions = 50;
  SessionEngine engine = f.make(o);
  engine.start();
  f.sim.runUntil(100.0);
  EXPECT_LE(engine.activeSessions(), 50u);
  EXPECT_GT(engine.rejectedFor(SessionReject::Cap), 0u);
  EXPECT_EQ(engine.rejectedFor(SessionReject::Cap), engine.rejectedSessions());
  EXPECT_EQ(engine.rejectedForApp(f.app), engine.rejectedSessions());
  EXPECT_EQ(engine.totalArrivals(),
            engine.activeSessions() + engine.completedSessions() +
                engine.brokenSessions() + engine.rejectedSessions());
}

TEST(SessionEngine, SwitchFullRejectionsCounted) {
  SwitchLimits tiny;
  tiny.maxConnections = 30;
  Fixture f{tiny};
  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(100.0);
  EXPECT_LE(f.fleet.at(f.swA).activeConnections(), 30u);
  EXPECT_GT(engine.rejectedFor(SessionReject::SwitchFull), 0u);
  EXPECT_EQ(engine.totalArrivals(),
            engine.activeSessions() + engine.completedSessions() +
                engine.brokenSessions() + engine.rejectedSessions());
}

TEST(SessionEngine, NoRipsRejectionsCounted) {
  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers{dns, ResolverConfig{}};
  SwitchFleet fleet;
  StaticDemand demand{{5000.0}};
  const AppId app = apps.create("a", AppSla{}, 5000.0);
  const SwitchId sw = fleet.addSwitch(SwitchLimits{});
  const VipId vip{7};
  ASSERT_TRUE(fleet.configureVip(sw, vip, app).ok());  // VIP with no RIPs
  dns.registerApp(app);
  dns.addVip(app, vip, 1.0);

  SessionEngine::Options o;
  o.sessionsPerSecondPerKrps = 2.0;
  SessionEngine engine{sim, apps, demand, dns, resolvers, fleet, o};
  engine.start();
  sim.runUntil(10.0);
  EXPECT_GT(engine.rejectedFor(SessionReject::NoRips), 0u);
  EXPECT_EQ(engine.rejectedFor(SessionReject::NoRips),
            engine.rejectedSessions());
}

TEST(SessionEngine, OptionValidation) {
  Fixture f;
  SessionEngine::Options bad = f.options();
  bad.meanSessionSeconds = 0.0;
  EXPECT_THROW(f.make(bad), PreconditionError);
  bad = f.options();
  bad.tick = 0.0;
  EXPECT_THROW(f.make(bad), PreconditionError);
  bad = f.options();
  bad.wheelSlots = 0;
  EXPECT_THROW(f.make(bad), PreconditionError);
}

TEST(SessionEngine, BeginDrainErrorTaxonomy) {
  Fixture f;
  SessionEngine engine = f.make(f.options());
  engine.start();
  f.sim.runUntil(10.0);
  EXPECT_EQ(engine.beginDrain(VipId{999}, f.swB).error().code, "vip_unowned");
  EXPECT_EQ(engine.beginDrain(f.vip, f.swA).error().code, "same_switch");
  f.fleet.crashSwitch(f.swB, f.sim.now());
  EXPECT_EQ(engine.beginDrain(f.vip, f.swB).error().code, "switch_down");
  f.fleet.recoverSwitch(f.swB);
  ASSERT_TRUE(engine.beginDrain(f.vip, f.swB).ok());
  EXPECT_EQ(engine.beginDrain(f.vip, f.swB).error().code, "already_draining");
  EXPECT_TRUE(engine.draining(f.vip));
  EXPECT_EQ(engine.drainsInProgress(), 1u);
}

// ---------------------------------------------------------------------------
// Randomized serialized-vs-sharded equivalence (the tentpole's proof).
//
// Five identical worlds run 200 epochs of the same arrival process and
// the same scripted mutation storm (DNS weight changes, drains, forced
// transfers, switch crashes and recoveries).  One world runs the
// serialized reference tick (no thread pool at all); the others run the
// sharded tick with 1, 2, 4, and 8 workers.  Every epoch, every counter
// and the full state hash must be bit-identical across all five.
// ---------------------------------------------------------------------------

struct TwinWorld {
  static constexpr std::size_t kApps = 6;
  static constexpr std::size_t kSwitches = 4;

  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers{dns, ResolverConfig{30.0, 0.0, 1800.0}};
  SwitchFleet fleet;
  StaticDemand demand;
  std::vector<AppId> ids;
  std::unique_ptr<SessionEngine> engine;

  TwinWorld(bool sharded, unsigned workers, std::uint64_t seed)
      : demand{rates()} {
    for (std::size_t a = 0; a < kApps; ++a) {
      ids.push_back(
          apps.create("app" + std::to_string(a), AppSla{}, rates()[a]));
      dns.registerApp(ids.back());
    }
    for (std::size_t s = 0; s < kSwitches; ++s) fleet.addSwitch(SwitchLimits{});
    std::uint32_t nextRip = 0;
    for (std::size_t a = 0; a < kApps; ++a) {
      for (std::size_t k = 0; k < 2; ++k) {
        const VipId vip{static_cast<std::uint32_t>(100 + a * 2 + k)};
        const SwitchId sw{static_cast<std::uint32_t>((a + k) % kSwitches)};
        EXPECT_TRUE(fleet.configureVip(sw, vip, ids[a]).ok());
        for (int j = 0; j < 2; ++j) {
          RipEntry rip;
          rip.rip = RipId{nextRip};
          rip.vm = VmId{nextRip};
          ++nextRip;
          EXPECT_TRUE(fleet.addRip(vip, rip).ok());
        }
        dns.addVip(ids[a], vip, 1.0);
      }
    }
    SessionEngine::Options o;
    o.sessionsPerSecondPerKrps = 2.0;
    o.meanSessionSeconds = 12.0;
    o.seed = seed;
    o.tick = 1.0;
    o.maxActiveSessions = 1500;  // tight enough to exercise Cap admission
    o.workers = workers;
    o.sharded = sharded;
    o.wheelSlots = 64;
    engine = std::make_unique<SessionEngine>(sim, apps, demand, dns, resolvers,
                                             fleet, o);
  }

  static std::vector<double> rates() {
    std::vector<double> r;
    for (std::size_t a = 0; a < kApps; ++a) {
      r.push_back(4000.0 + 3000.0 * static_cast<double>(a));
    }
    return r;
  }

  void step(std::uint64_t epoch) {
    sim.runUntil(static_cast<SimTime>(epoch));
    engine->tick();
  }
};

struct ScriptAction {
  enum Kind { Weight, Drain, Force, Crash, Recover } kind;
  std::uint64_t epoch;
  std::uint32_t vip = 0;  // vip id (Weight/Drain/Force)
  std::uint32_t sw = 0;   // destination / crash target
  double weight = 0.0;
};

// One deterministic mutation script, drawn once and replayed against
// every world.  Only switches 1 and 2 crash (and later recover), so the
// worlds never lose every VIP owner.
std::vector<ScriptAction> makeScript(std::uint64_t scriptSeed,
                                     std::uint64_t epochs) {
  std::mt19937 rng{static_cast<std::uint32_t>(scriptSeed)};
  std::vector<ScriptAction> script;
  const double weights[] = {0.0, 0.5, 1.0, 2.0};
  for (std::uint64_t e = 5; e <= epochs; e += 5) {
    ScriptAction a{};
    a.epoch = e;
    const auto roll = static_cast<std::uint32_t>(rng() % 10);
    a.vip = static_cast<std::uint32_t>(100 + rng() % (TwinWorld::kApps * 2));
    a.sw = static_cast<std::uint32_t>(rng() % TwinWorld::kSwitches);
    if (roll < 5) {
      a.kind = ScriptAction::Weight;
      a.weight = weights[rng() % 4];
    } else if (roll < 8) {
      a.kind = ScriptAction::Drain;
    } else {
      a.kind = ScriptAction::Force;
    }
    script.push_back(a);
  }
  script.push_back({ScriptAction::Crash, 60, 0, 1, 0.0});
  script.push_back({ScriptAction::Recover, 90, 0, 1, 0.0});
  script.push_back({ScriptAction::Crash, 120, 0, 2, 0.0});
  script.push_back({ScriptAction::Recover, 150, 0, 2, 0.0});
  return script;
}

std::string apply(TwinWorld& w, const ScriptAction& a) {
  switch (a.kind) {
    case ScriptAction::Weight: {
      // Weight changes only apply while the VIP is still in DNS under a
      // live owner; mirror that check so the script stays applicable.
      const auto owner = w.fleet.ownerOf(VipId{a.vip});
      if (!owner.has_value()) return "skip_unowned";
      const VipEntry* e = w.fleet.at(*owner).findVip(VipId{a.vip});
      if (e == nullptr || weightOf(w.dns, e->app, VipId{a.vip}) < 0.0) {
        return "skip_not_in_dns";
      }
      w.dns.setWeight(e->app, VipId{a.vip}, a.weight);
      return "ok";
    }
    case ScriptAction::Drain: {
      const Status s = w.engine->beginDrain(VipId{a.vip}, SwitchId{a.sw});
      return s.ok() ? "ok" : s.error().code;
    }
    case ScriptAction::Force: {
      const Status s = w.engine->forceTransfer(VipId{a.vip}, SwitchId{a.sw});
      return s.ok() ? "ok" : s.error().code;
    }
    case ScriptAction::Crash:
      if (!w.fleet.isUp(SwitchId{a.sw})) return "skip_down";
      w.fleet.crashSwitch(SwitchId{a.sw}, w.sim.now());
      return "ok";
    case ScriptAction::Recover:
      if (w.fleet.isUp(SwitchId{a.sw})) return "skip_up";
      w.fleet.recoverSwitch(SwitchId{a.sw});
      return "ok";
  }
  return "?";
}

TEST(SessionEngineEquivalence, RandomizedShardedMatchesSerializedBitExact) {
  // The container may expose a single core; the sweep intentionally
  // oversubscribes to prove determinism is scheduling-independent.
  ::setenv("MDC_ALLOW_OVERSUBSCRIBE", "1", 1);
  constexpr std::uint64_t kEpochs = 200;
  const std::uint64_t seed = 20260809;

  TwinWorld ref{/*sharded=*/false, 0, seed};
  std::vector<std::unique_ptr<TwinWorld>> sharded;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    sharded.push_back(std::make_unique<TwinWorld>(true, workers, seed));
    EXPECT_EQ(sharded.back()->engine->workerCount(), workers);
  }

  const std::vector<ScriptAction> script = makeScript(seed ^ 0xabcd, kEpochs);
  std::size_t next = 0;
  for (std::uint64_t e = 1; e <= kEpochs; ++e) {
    // Keep script order stable: actions were generated epoch-ascending.
    for (std::size_t i = 0; i < script.size(); ++i) {
      if (script[i].epoch != e) continue;
      const std::string refOutcome = apply(ref, script[i]);
      for (auto& w : sharded) {
        ASSERT_EQ(apply(*w, script[i]), refOutcome)
            << "action " << i << " diverged at epoch " << e;
      }
    }
    ref.step(e);
    for (auto& w : sharded) {
      w->step(e);
      ASSERT_EQ(w->engine->totalArrivals(), ref.engine->totalArrivals())
          << "epoch " << e << " workers " << w->engine->workerCount();
      ASSERT_EQ(w->engine->activeSessions(), ref.engine->activeSessions())
          << "epoch " << e << " workers " << w->engine->workerCount();
      ASSERT_EQ(w->engine->completedSessions(), ref.engine->completedSessions())
          << "epoch " << e << " workers " << w->engine->workerCount();
      ASSERT_EQ(w->engine->brokenSessions(), ref.engine->brokenSessions())
          << "epoch " << e << " workers " << w->engine->workerCount();
      ASSERT_EQ(w->engine->rejectedSessions(), ref.engine->rejectedSessions())
          << "epoch " << e << " workers " << w->engine->workerCount();
      ASSERT_EQ(w->engine->stateHash(), ref.engine->stateHash())
          << "epoch " << e << " workers " << w->engine->workerCount();
    }
    (void)next;
  }
  // The storm actually exercised the interesting paths.
  EXPECT_GT(ref.engine->totalArrivals(), 10'000u);
  EXPECT_GT(ref.engine->brokenSessions(), 0u);
  EXPECT_GT(ref.engine->rejectedSessions(), 0u);
  EXPECT_GT(ref.engine->drainsCompleted() + ref.engine->drainsAborted() +
                ref.engine->drainsInProgress(),
            0u);
}

// ---------------------------------------------------------------------------
// Drain-curve properties across DNS TTLs (the paper's TTL argument).
// ---------------------------------------------------------------------------

struct DrainWorld {
  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers;
  SwitchFleet fleet;
  StaticDemand demand{{20'000.0}};
  AppId app;
  VipId vipA{1}, vipB{2};
  SwitchId swA, swB, swC;
  std::unique_ptr<SessionEngine> engine;

  explicit DrainWorld(double ttlSeconds, std::uint64_t seed = 7)
      : resolvers{dns, ResolverConfig{ttlSeconds, 0.0, 1800.0}} {
    app = apps.create("web", AppSla{}, 20'000.0);
    swA = fleet.addSwitch(SwitchLimits{});
    swB = fleet.addSwitch(SwitchLimits{});
    swC = fleet.addSwitch(SwitchLimits{});
    EXPECT_TRUE(fleet.configureVip(swA, vipA, app).ok());
    EXPECT_TRUE(fleet.configureVip(swB, vipB, app).ok());
    for (std::uint32_t r = 0; r < 4; ++r) {
      RipEntry rip;
      rip.rip = RipId{r};
      rip.vm = VmId{r};
      EXPECT_TRUE(fleet.addRip(r < 2 ? vipA : vipB, rip).ok());
    }
    dns.registerApp(app);
    dns.addVip(app, vipA, 1.0);
    dns.addVip(app, vipB, 1.0);
    SessionEngine::Options o;
    o.sessionsPerSecondPerKrps = 1.0;  // 20 sessions/s
    o.meanSessionSeconds = 10.0;
    o.tick = 1.0;
    o.seed = seed;
    engine = std::make_unique<SessionEngine>(sim, apps, demand, dns, resolvers,
                                             fleet, o);
    engine->start();
  }
};

TEST(SessionEngineDrain, QuiescentDrainZeroBrokenMonotoneAfterShareDecay) {
  for (const double ttl : {1.0, 30.0, 300.0}) {
    SCOPED_TRACE("ttl=" + std::to_string(ttl));
    DrainWorld w{ttl};
    w.sim.runUntil(50.0);
    ASSERT_GT(w.fleet.at(w.swA).activeConnections(w.vipA), 0u);
    ASSERT_TRUE(w.engine->beginDrain(w.vipA, w.swC).ok());
    EXPECT_EQ(weightOf(w.dns, w.app, w.vipA), 0.0);

    // Once the resolver share of the draining VIP has fully decayed, no
    // new session can pick it: the old switch's resident count must be
    // monotone non-increasing from there until the transfer fires.
    bool decayed = false;
    std::uint64_t prev = 0;
    const double deadline = 50.0 + ttl * 40.0 + 600.0;
    for (double t = 51.0; t <= deadline; t += 1.0) {
      w.sim.runUntil(t);
      if (w.engine->drainsCompleted() > 0) break;
      const std::uint64_t cnt = w.fleet.at(w.swA).activeConnections(w.vipA);
      if (!decayed && w.resolvers.share(w.app, w.vipA) <= 1e-9) {
        decayed = true;
        prev = cnt;
      }
      if (decayed) {
        ASSERT_LE(cnt, prev) << "old-switch count grew at t=" << t;
        prev = cnt;
      }
    }
    ASSERT_EQ(w.engine->drainsCompleted(), 1u);
    EXPECT_EQ(w.engine->drainsInProgress(), 0u);
    EXPECT_EQ(w.engine->brokenSessions(), 0u);
    EXPECT_EQ(w.fleet.droppedConnections(), 0u);
    ASSERT_TRUE(w.fleet.ownerOf(w.vipA).has_value());
    EXPECT_EQ(*w.fleet.ownerOf(w.vipA), w.swC);
    // Quiescent completion re-exposes the VIP at its prior weight.
    EXPECT_EQ(weightOf(w.dns, w.app, w.vipA), 1.0);
    EXPECT_EQ(w.engine->drainLatency().count(), 1u);
    EXPECT_GT(w.engine->drainP99Seconds(), 0.0);
  }
}

TEST(SessionEngineDrain, DrainLatencyGrowsWithTtl) {
  std::vector<double> latency;
  for (const double ttl : {1.0, 30.0, 300.0}) {
    DrainWorld w{ttl};
    w.sim.runUntil(50.0);
    ASSERT_TRUE(w.engine->beginDrain(w.vipA, w.swC).ok());
    w.sim.runUntil(50.0 + ttl * 40.0 + 600.0);
    ASSERT_EQ(w.engine->drainsCompleted(), 1u);
    latency.push_back(w.engine->drainP99Seconds());
  }
  // TTL is the dominant term of the drain curve: longer client caches
  // hold sessions on the old switch longer.
  EXPECT_LT(latency[0], latency[1]);
  EXPECT_LT(latency[1], latency[2]);
}

TEST(SessionEngineDrain, ForcedTransferBreaksExactlyResidents) {
  DrainWorld w{30.0};
  w.sim.runUntil(50.0);
  const std::uint64_t resident = w.fleet.at(w.swA).activeConnections(w.vipA);
  ASSERT_GT(resident, 0u);

  // Snapshot the *other* VIP's sessions: survivors must keep their RIP.
  std::map<std::uint64_t, std::uint32_t> before;
  w.engine->shardOf(w.swB).forEachOfVip(
      w.vipB, [&](std::uint64_t id, RipId rip) { before[id] = rip.value(); });
  ASSERT_FALSE(before.empty());

  ASSERT_TRUE(w.engine->forceTransfer(w.vipA, w.swC).ok());
  EXPECT_EQ(w.engine->brokenSessions(), resident);
  EXPECT_EQ(w.fleet.at(w.swA).activeConnections(w.vipA), 0u);
  ASSERT_TRUE(w.fleet.ownerOf(w.vipA).has_value());
  EXPECT_EQ(*w.fleet.ownerOf(w.vipA), w.swC);

  std::size_t matched = 0;
  w.engine->shardOf(w.swB).forEachOfVip(
      w.vipB, [&](std::uint64_t id, RipId rip) {
        const auto it = before.find(id);
        ASSERT_NE(it, before.end()) << "survivor session appeared from nowhere";
        EXPECT_EQ(it->second, rip.value()) << "survivor lost RIP stickiness";
        ++matched;
      });
  EXPECT_EQ(matched, before.size());
}

TEST(SessionEngineDrain, AbortedDrainWhenOwnerCrashes) {
  DrainWorld w{30.0};
  w.sim.runUntil(50.0);
  ASSERT_TRUE(w.engine->beginDrain(w.vipA, w.swC).ok());
  w.fleet.crashSwitch(w.swA, w.sim.now());
  w.sim.runUntil(52.0);
  EXPECT_EQ(w.engine->drainsAborted(), 1u);
  EXPECT_EQ(w.engine->drainsCompleted(), 0u);
  EXPECT_EQ(w.engine->drainsInProgress(), 0u);
  // Aborts leave DNS to the health plane: weight stays steered away.
  EXPECT_EQ(weightOf(w.dns, w.app, w.vipA), 0.0);
  EXPECT_GT(w.engine->brokenSessions(), 0u);  // crash severed the shard
}

TEST(SessionEngineDrain, DrainAndBreakEmitTraceSpans) {
  DrainWorld w{30.0};
  Tracer tracer{w.sim, Tracer::Options{1u << 12, true}};
  w.engine->attachTracer(&tracer);
  w.sim.runUntil(50.0);

  ASSERT_TRUE(w.engine->beginDrain(w.vipA, w.swC).ok());
  const std::uint64_t resident = w.fleet.at(w.swA).activeConnections(w.vipA);
  ASSERT_GT(resident, 0u);
  ASSERT_TRUE(w.engine->forceTransfer(w.vipA, w.swC).ok());

  std::size_t starts = 0, dones = 0, breaks = 0;
  for (const TraceEvent& e : tracer.ring().snapshot()) {
    if (e.hop == HopKind::SessionDrainStart) ++starts;
    if (e.hop == HopKind::SessionDrainDone) ++dones;
    if (e.hop == HopKind::SessionConnBroken) ++breaks;
  }
  EXPECT_EQ(starts, 1u);
  EXPECT_EQ(dones, 1u);  // the force finished the in-flight drain
  EXPECT_EQ(breaks, resident);
}

// ---------------------------------------------------------------------------
// MegaDc plumbing: the configurable cap, per-app rejections, and the
// labeled mdc.session.rejected metric (satellite 4).
// ---------------------------------------------------------------------------

TEST(SessionEngineMegaDc, CapFlowsThroughConfigMetricsAndReports) {
  MegaDcConfig cfg = testScaleConfig();
  cfg.enableSessionEngine = true;
  cfg.session.maxActiveSessions = 25;
  cfg.session.sessionsPerSecondPerKrps = 5.0;
  cfg.session.meanSessionSeconds = 30.0;
  MegaDc dc{cfg};
  dc.bootstrap();
  dc.runUntil(60.0);

  ASSERT_NE(dc.sessions, nullptr);
  EXPECT_LE(dc.sessions->activeSessions(), 25u);
  EXPECT_GT(dc.sessions->rejectedFor(SessionReject::Cap), 0u);
  EXPECT_EQ(dc.sessions->totalArrivals(),
            dc.sessions->activeSessions() + dc.sessions->completedSessions() +
                dc.sessions->brokenSessions() +
                dc.sessions->rejectedSessions());

  // Per-app rejections partition the total.
  std::uint64_t perApp = 0;
  for (const auto& a : dc.apps.all()) {
    perApp += dc.sessions->rejectedForApp(a.id);
  }
  EXPECT_EQ(perApp, dc.sessions->rejectedSessions());

  // The labeled rejection gauge surfaces the same counter.
  EXPECT_EQ(dc.metrics.value("mdc.session.rejected", {{"reason", "cap"}}),
            static_cast<double>(dc.sessions->rejectedFor(SessionReject::Cap)));
  EXPECT_EQ(dc.metrics.value("mdc.session.active"),
            static_cast<double>(dc.sessions->activeSessions()));

  // Reports carry the session plane (and survive the canonical codec).
  const EpochReport& rep = dc.engine->latest();
  EXPECT_EQ(rep.sessionArrivals, dc.sessions->totalArrivals());
  state::ByteWriter wtr;
  encodeEpochReport(rep, wtr);
  state::ByteReader rdr{wtr.bytes()};
  const EpochReport back = decodeEpochReport(rdr);
  EXPECT_EQ(back.sessionActive, rep.sessionActive);
  EXPECT_EQ(hashEpochReport(back), hashEpochReport(rep));
}

}  // namespace
}  // namespace mdc
