// Tests for the session-level engine and its interaction with VIP
// transfer (connection affinity, §IV-B).
#include <gtest/gtest.h>

#include <cmath>

#include "mdc/scenario/session_engine.hpp"

namespace mdc {
namespace {

struct Fixture {
  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers{dns, ResolverConfig{}};
  SwitchFleet fleet;
  StaticDemand demand{{10'000.0}};
  AppId app;
  VipId vip{100};
  SwitchId swA, swB;

  Fixture() {
    app = apps.create("web", AppSla{}, 10'000.0);
    swA = fleet.addSwitch(SwitchLimits{});
    swB = fleet.addSwitch(SwitchLimits{});
    EXPECT_TRUE(fleet.configureVip(swA, vip, app).ok());
    RipEntry rip;
    rip.rip = RipId{0};
    rip.vm = VmId{0};
    EXPECT_TRUE(fleet.addRip(vip, rip).ok());
    dns.registerApp(app);
    dns.addVip(app, vip, 1.0);
  }

  SessionEngine::Options options() {
    SessionEngine::Options o;
    o.sessionsPerSecondPerKrps = 1.0;  // 10 sessions/s at 10 krps
    o.meanSessionSeconds = 20.0;
    o.tick = 1.0;
    o.seed = 5;
    return o;
  }
};

TEST(SessionEngine, SessionsArriveAndTrackOnSwitch) {
  Fixture f;
  SessionEngine engine{f.sim, f.apps, f.demand, f.resolvers, f.fleet,
                       f.options()};
  engine.start();
  f.sim.runUntil(30.0);
  EXPECT_GT(engine.totalArrivals(), 200u);
  EXPECT_GT(engine.activeSessions(), 0u);
  EXPECT_EQ(engine.rejectedSessions(), 0u);
  EXPECT_EQ(f.fleet.at(f.swA).activeConnections(), engine.activeSessions());
}

TEST(SessionEngine, SessionsCompleteOverTime) {
  Fixture f;
  SessionEngine engine{f.sim, f.apps, f.demand, f.resolvers, f.fleet,
                       f.options()};
  engine.start();
  f.sim.runUntil(200.0);
  EXPECT_GT(engine.completedSessions(), 0u);
  EXPECT_EQ(engine.brokenSessions(), 0u);
  // Little's law sanity: active ~ rate * duration = 10/s * 20 s = 200.
  EXPECT_NEAR(static_cast<double>(engine.activeSessions()), 200.0, 80.0);
}

TEST(SessionEngine, TransferRefusedWhileSessionsActive) {
  Fixture f;
  SessionEngine engine{f.sim, f.apps, f.demand, f.resolvers, f.fleet,
                       f.options()};
  engine.start();
  f.sim.runUntil(30.0);
  ASSERT_GT(f.fleet.at(f.swA).activeConnections(f.vip), 0u);
  EXPECT_EQ(f.fleet.transferVip(f.vip, f.swB).error().code, "vip_in_use");
}

TEST(SessionEngine, ForcedTransferBreaksSessions) {
  Fixture f;
  SessionEngine engine{f.sim, f.apps, f.demand, f.resolvers, f.fleet,
                       f.options()};
  engine.start();
  f.sim.runUntil(30.0);
  const auto inFlight = f.fleet.at(f.swA).activeConnections(f.vip);
  ASSERT_GT(inFlight, 0u);
  ASSERT_TRUE(f.fleet.transferVip(f.vip, f.swB, /*force=*/true).ok());
  EXPECT_EQ(f.fleet.droppedConnections(), inFlight);
  // Let every broken session reach its scheduled close.
  f.sim.runUntil(600.0);
  EXPECT_GE(engine.brokenSessions(), inFlight);
}

TEST(SessionEngine, DrainViaDnsThenTransferCleanly) {
  // The paper's drain recipe: stop exposing the VIP, wait for sessions to
  // finish, then transfer with zero affinity violations.
  Fixture f;
  // Add a second VIP so clients have somewhere else to go.
  const VipId vip2{101};
  ASSERT_TRUE(f.fleet.configureVip(f.swB, vip2, f.app).ok());
  RipEntry rip;
  rip.rip = RipId{1};
  rip.vm = VmId{1};
  ASSERT_TRUE(f.fleet.addRip(vip2, rip).ok());
  f.dns.addVip(f.app, vip2, 1.0);

  SessionEngine engine{f.sim, f.apps, f.demand, f.resolvers, f.fleet,
                       f.options()};
  engine.start();
  f.sim.runUntil(30.0);
  ASSERT_GT(f.fleet.at(f.swA).activeConnections(f.vip), 0u);

  f.dns.setWeight(f.app, f.vip, 0.0);  // selective exposure away
  // Old sessions finish (mean 20 s); new ones go to vip2 as resolver
  // caches expire.  After several TTLs + session lifetimes it quiesces.
  f.sim.runUntil(2000.0);
  EXPECT_EQ(f.fleet.at(f.swA).activeConnections(f.vip), 0u);
  ASSERT_TRUE(f.fleet.transferVip(f.vip, f.swB).ok());
  EXPECT_EQ(engine.brokenSessions(), 0u);
  EXPECT_EQ(f.fleet.droppedConnections(), 0u);
}

TEST(SessionEngine, RejectsWhenNoVipExposed) {
  Simulation sim;
  AppRegistry apps;
  AuthoritativeDns dns;
  ResolverPopulation resolvers{dns, ResolverConfig{}};
  SwitchFleet fleet;
  StaticDemand demand{{1000.0}};
  const AppId app = apps.create("a", AppSla{}, 1000.0);
  dns.registerApp(app);  // registered but no VIPs

  SessionEngine::Options o;
  o.sessionsPerSecondPerKrps = 5.0;
  SessionEngine engine{sim, apps, demand, resolvers, fleet, o};
  engine.start();
  sim.runUntil(10.0);
  EXPECT_GT(engine.totalArrivals(), 0u);
  EXPECT_EQ(engine.rejectedSessions(), engine.totalArrivals());
}

TEST(SessionEngine, OptionValidation) {
  Fixture f;
  SessionEngine::Options bad = f.options();
  bad.meanSessionSeconds = 0.0;
  EXPECT_THROW(
      (SessionEngine{f.sim, f.apps, f.demand, f.resolvers, f.fleet, bad}),
      PreconditionError);
}

}  // namespace
}  // namespace mdc
