// Unit tests for the command-plane admission layer (E18): footprint
// conflict detection, batched rounds, priority-class shedding, deadline
// budgets, brownout hysteresis, and the durability of the journaled
// admission aggregates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mdc/core/viprip_manager.hpp"
#include "mdc/ctrl/admission.hpp"

namespace mdc {
namespace {

using Kind = FootprintSet::Kind;

// --- FootprintSet ---------------------------------------------------------

TEST(FootprintSet, ReadsCommute) {
  FootprintSet a, b;
  a.read(Kind::App, 1);
  b.read(Kind::App, 1);
  EXPECT_FALSE(a.conflictsWith(b));
}

TEST(FootprintSet, WriteConflictsWithRead) {
  FootprintSet a, b;
  a.write(Kind::Vm, 7);
  b.read(Kind::Vm, 7);
  EXPECT_TRUE(a.conflictsWith(b));
  EXPECT_TRUE(b.conflictsWith(a));
}

TEST(FootprintSet, WritesOnDistinctKeysCommute) {
  FootprintSet a, b;
  a.write(Kind::Vm, 1);
  b.write(Kind::Vm, 2);
  b.write(Kind::Vip, 1);  // same id, different kind
  EXPECT_FALSE(a.conflictsWith(b));
}

TEST(FootprintSet, MergeClaimsKeys) {
  FootprintSet claimed, late;
  FootprintSet fp;
  fp.write(Kind::App, 3);
  claimed.merge(fp);
  late.read(Kind::App, 3);
  EXPECT_TRUE(claimed.conflictsWith(late));
}

// --- AdmissionController ---------------------------------------------------

VipRipRequest makeReq(VipRipOp op, int priority = 0, std::uint32_t vm = 0) {
  VipRipRequest r;
  r.op = op;
  r.priority = priority;
  r.vm = VmId{vm};
  return r;
}

AdmissionController::ShedFn nopShed() {
  return [](AdmissionController::Entry&&, SimTime) {};
}

TEST(AdmissionController, ClassifiesByOpAndPriority) {
  AdmissionController adm{AdmissionController::Options{}};
  EXPECT_EQ(adm.classify(makeReq(VipRipOp::SetWeight)), AdmissionClass::Bulk);
  EXPECT_EQ(adm.classify(makeReq(VipRipOp::NewVip)), AdmissionClass::Capacity);
  EXPECT_EQ(adm.classify(makeReq(VipRipOp::RestoreVip)),
            AdmissionClass::Critical);
  // The health monitor's cleanup DeleteRips ride at restore priority.
  EXPECT_EQ(adm.classify(makeReq(VipRipOp::DeleteRip, 10)),
            AdmissionClass::Critical);
}

TEST(AdmissionController, UnboundedQueueNeverSheds) {
  AdmissionController adm{AdmissionController::Options{}};
  for (int i = 0; i < 100; ++i) {
    const auto res = adm.offer(makeReq(VipRipOp::SetWeight), 0.0, nopShed());
    EXPECT_TRUE(res.accepted);
  }
  EXPECT_EQ(adm.depth(), 100u);
  EXPECT_EQ(adm.shed(), 0u);
}

TEST(AdmissionController, BulkShedsBeforeCapacity) {
  AdmissionController::Options opt;
  opt.maxQueueDepth = 4;
  opt.bulkShare = 0.5;  // at most 2 bulk entries queued
  AdmissionController adm{opt};

  EXPECT_TRUE(adm.offer(makeReq(VipRipOp::SetWeight), 0.0, nopShed()).accepted);
  EXPECT_TRUE(adm.offer(makeReq(VipRipOp::SetWeight, 0, 1), 0.0, nopShed())
                  .accepted);
  // Third bulk entry exceeds bulk's share while capacity work still fits.
  const auto bulk3 = adm.offer(makeReq(VipRipOp::SetWeight, 0, 2), 0.0,
                               nopShed());
  EXPECT_FALSE(bulk3.accepted);
  EXPECT_TRUE(bulk3.overloaded);
  EXPECT_STREQ(bulk3.code, "overloaded");
  EXPECT_GT(bulk3.retryAfterSeconds, 0.0);
  EXPECT_TRUE(adm.offer(makeReq(VipRipOp::NewVip), 0.0, nopShed()).accepted);
  EXPECT_TRUE(adm.offer(makeReq(VipRipOp::NewRip), 0.0, nopShed()).accepted);
  // Queue full: capacity sheds too now.
  EXPECT_FALSE(adm.offer(makeReq(VipRipOp::NewVip), 0.0, nopShed()).accepted);
  EXPECT_EQ(adm.shedOf(AdmissionClass::Bulk), 1u);
  EXPECT_EQ(adm.shedOf(AdmissionClass::Capacity), 1u);
  EXPECT_EQ(adm.shedOf(AdmissionClass::Critical), 0u);
}

TEST(AdmissionController, CriticalEvictsNewestBulkWhenFull) {
  AdmissionController::Options opt;
  opt.maxQueueDepth = 2;
  opt.bulkShare = 1.0;
  AdmissionController adm{opt};

  std::vector<std::uint64_t> evicted;
  auto onShed = [&](AdmissionController::Entry&& e, SimTime) {
    evicted.push_back(e.req.vm.value());
  };
  EXPECT_TRUE(adm.offer(makeReq(VipRipOp::SetWeight, 0, 1), 0.0, onShed)
                  .accepted);
  EXPECT_TRUE(adm.offer(makeReq(VipRipOp::SetWeight, 0, 2), 0.0, onShed)
                  .accepted);
  // A restore arrives into the full queue: admitted, newest bulk evicted.
  const auto res = adm.offer(makeReq(VipRipOp::RestoreVip), 0.0, onShed);
  EXPECT_TRUE(res.accepted);
  EXPECT_EQ(adm.depth(), 2u);
  EXPECT_EQ(adm.evictions(), 1u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted.front(), 2u);  // newest bulk went, oldest stayed
  EXPECT_EQ(adm.shedOf(AdmissionClass::Critical), 0u);
}

TEST(AdmissionController, FormRoundAdmitsDisjointDefersConflicting) {
  AdmissionController::Options opt;
  opt.batchSize = 8;
  AdmissionController adm{opt};
  // Three requests: two touch distinct VMs, the third collides with the
  // first.
  (void)adm.offer(makeReq(VipRipOp::SetWeight, 0, 1), 0.0, nopShed());
  (void)adm.offer(makeReq(VipRipOp::SetWeight, 0, 2), 0.0, nopShed());
  (void)adm.offer(makeReq(VipRipOp::DeleteRip, 0, 1), 0.0, nopShed());

  auto footprint = [](const VipRipRequest& r, FootprintSet& fp) {
    fp.write(Kind::Vm, r.vm.value());
  };
  const auto round = adm.formRound(0.0, footprint);
  ASSERT_EQ(round.batch.size(), 2u);
  EXPECT_EQ(round.batch[0].req.vm.value(), 1u);
  EXPECT_EQ(round.batch[1].req.vm.value(), 2u);
  EXPECT_EQ(round.deferred, 1u);
  EXPECT_EQ(adm.depth(), 1u);  // the conflicting one stays queued

  const auto next = adm.formRound(0.0, footprint);
  ASSERT_EQ(next.batch.size(), 1u);
  EXPECT_EQ(next.batch[0].req.op, VipRipOp::DeleteRip);
}

TEST(AdmissionController, DeferredFootprintBlocksLaterRequests) {
  // Per-key FIFO: once a request is deferred, later requests touching its
  // keys must not overtake it — even if they would fit the batch.
  AdmissionController adm{AdmissionController::Options{}};
  (void)adm.offer(makeReq(VipRipOp::SetWeight, 0, 1), 0.0, nopShed());
  (void)adm.offer(makeReq(VipRipOp::DeleteRip, 0, 1), 0.0, nopShed());
  (void)adm.offer(makeReq(VipRipOp::NewRip, 0, 1), 0.0, nopShed());

  auto footprint = [](const VipRipRequest& r, FootprintSet& fp) {
    fp.write(Kind::Vm, r.vm.value());
  };
  auto r1 = adm.formRound(0.0, footprint);
  ASSERT_EQ(r1.batch.size(), 1u);
  EXPECT_EQ(r1.batch[0].req.op, VipRipOp::SetWeight);
  EXPECT_EQ(r1.deferred, 2u);
  auto r2 = adm.formRound(0.0, footprint);
  ASSERT_EQ(r2.batch.size(), 1u);
  EXPECT_EQ(r2.batch[0].req.op, VipRipOp::DeleteRip);
  auto r3 = adm.formRound(0.0, footprint);
  ASSERT_EQ(r3.batch.size(), 1u);
  EXPECT_EQ(r3.batch[0].req.op, VipRipOp::NewRip);
}

TEST(AdmissionController, SerializedModeBatchesOfOne) {
  AdmissionController::Options opt;
  opt.pipelined = false;
  AdmissionController adm{opt};
  (void)adm.offer(makeReq(VipRipOp::SetWeight, 0, 1), 0.0, nopShed());
  (void)adm.offer(makeReq(VipRipOp::SetWeight, 0, 2), 0.0, nopShed());
  auto footprint = [](const VipRipRequest& r, FootprintSet& fp) {
    fp.write(Kind::Vm, r.vm.value());
  };
  EXPECT_EQ(adm.effectiveBatchSize(), 1u);
  EXPECT_EQ(adm.formRound(0.0, footprint).batch.size(), 1u);
  EXPECT_EQ(adm.formRound(0.0, footprint).batch.size(), 1u);
}

TEST(AdmissionController, DeadlineExpiryRespectsClassBudgets) {
  AdmissionController::Options opt;
  opt.capacityDeadlineSeconds = 0.5;
  AdmissionController adm{opt};
  (void)adm.offer(makeReq(VipRipOp::NewVip), 0.0, nopShed());
  (void)adm.offer(makeReq(VipRipOp::RestoreVip), 0.0, nopShed());

  auto footprint = [](const VipRipRequest&, FootprintSet& fp) {
    fp.write(Kind::App, 1);  // everything conflicts: nothing admitted twice
  };
  // Well past the capacity budget: the NewVip expires, the critical
  // restore never does (it is still valid until it lands).
  const auto round = adm.formRound(1.0, footprint);
  ASSERT_EQ(round.expired.size(), 1u);
  EXPECT_EQ(round.expired[0].req.op, VipRipOp::NewVip);
  ASSERT_EQ(round.batch.size(), 1u);
  EXPECT_EQ(round.batch[0].req.op, VipRipOp::RestoreVip);
  EXPECT_EQ(adm.deadlineExpired(), 1u);
}

TEST(AdmissionController, BrownoutHalvesBatchWithHysteresis) {
  AdmissionController::Options opt;
  opt.batchSize = 8;
  opt.brownoutWindowSeconds = 10.0;
  opt.brownoutEnterTimeoutRate = 0.25;
  opt.brownoutExitTimeoutRate = 0.05;
  AdmissionController adm{opt};

  adm.observeSender(100, 0, 0.0);  // anchors the window
  EXPECT_FALSE(adm.brownoutActive());
  EXPECT_EQ(adm.effectiveBatchSize(), 8u);

  adm.observeSender(200, 40, 11.0);  // 40% of the window's sends timed out
  EXPECT_TRUE(adm.brownoutActive());
  EXPECT_EQ(adm.effectiveBatchSize(), 4u);
  EXPECT_EQ(adm.brownoutEntries(), 1u);

  // A mid-band rate (10%) holds the current state (hysteresis)...
  adm.observeSender(300, 50, 22.0);
  EXPECT_TRUE(adm.brownoutActive());
  // ...and a calm window exits.
  adm.observeSender(400, 51, 33.0);
  EXPECT_FALSE(adm.brownoutActive());
  EXPECT_EQ(adm.effectiveBatchSize(), 8u);
}

TEST(AdmissionController, CoalescesQueuedSetWeight) {
  AdmissionController adm{AdmissionController::Options{}};
  (void)adm.offer(makeReq(VipRipOp::SetWeight, 0, 5), 0.0, nopShed());
  EXPECT_TRUE(adm.coalesceSetWeight(VmId{5}, 9.0));
  EXPECT_FALSE(adm.coalesceSetWeight(VmId{6}, 9.0));
  EXPECT_EQ(adm.depth(), 1u);
  auto footprint = [](const VipRipRequest&, FootprintSet&) {};
  const auto round = adm.formRound(0.0, footprint);
  ASSERT_EQ(round.batch.size(), 1u);
  EXPECT_DOUBLE_EQ(round.batch[0].req.weight, 9.0);
  EXPECT_EQ(adm.coalesced(), 1u);
}

// --- VipRipManager integration ---------------------------------------------

struct Fixture {
  Simulation sim;
  Topology topo;
  SwitchFleet fleet;
  AuthoritativeDns dns;
  RouteRegistry routes{2.0};
  AppRegistry apps;
  VipRipManager viprip;

  static TopologyConfig topoConfig() {
    TopologyConfig cfg;
    cfg.numServers = 8;
    cfg.numIsps = 2;
    cfg.accessLinksPerIsp = 1;
    cfg.numSwitches = 3;
    return cfg;
  }

  static SwitchLimits bigSwitch() {
    SwitchLimits lim;
    lim.maxVips = 32;
    lim.maxRips = 64;
    return lim;
  }

  explicit Fixture(VipRipManager::Options o = options())
      : topo(topoConfig()),
        viprip(sim, fleet, dns, routes, apps, topo, o) {
    for (int i = 0; i < 3; ++i) fleet.addSwitch(bigSwitch());
  }

  static VipRipManager::Options options() {
    VipRipManager::Options o;
    o.processSeconds = 0.1;
    o.reconfigSeconds = 1.0;
    return o;
  }
};

TEST(AdmissionIntegration, DisjointRequestsCommitInOneRound) {
  Fixture f;
  std::vector<double> doneAt;
  for (int i = 0; i < 3; ++i) {
    const AppId app = f.apps.create("a" + std::to_string(i), AppSla{}, 100.0);
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&f, &doneAt](Status s) {
      ASSERT_TRUE(s.ok());
      doneAt.push_back(f.sim.now());
    };
    EXPECT_TRUE(f.viprip.submit(std::move(req)).accepted);
  }
  f.sim.runUntil(1e6);
  // Different apps have disjoint footprints: one round, one decision
  // cost, all three land together at process + reconfig.
  ASSERT_EQ(doneAt.size(), 3u);
  for (const double t : doneAt) EXPECT_NEAR(t, 1.1, 1e-9);
  EXPECT_EQ(f.viprip.admissionTotals().rounds, 1u);
  EXPECT_EQ(f.viprip.admissionTotals().admitted, 3u);
}

TEST(AdmissionIntegration, ConflictingRequestsKeepSerializedTimeline) {
  Fixture f;
  const AppId app = f.apps.create("a", AppSla{}, 100.0);
  std::vector<double> doneAt;
  for (int i = 0; i < 3; ++i) {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&f, &doneAt](Status s) {
      ASSERT_TRUE(s.ok());
      doneAt.push_back(f.sim.now());
    };
    EXPECT_TRUE(f.viprip.submit(std::move(req)).accepted);
  }
  f.sim.runUntil(1e6);
  // Same app: every footprint collides, so rounds degenerate to batches
  // of one — the exact timeline of the fully serialized seed queue.
  ASSERT_EQ(doneAt.size(), 3u);
  EXPECT_NEAR(doneAt[0], 1.1, 1e-9);
  EXPECT_NEAR(doneAt[1], 1.2, 1e-9);
  EXPECT_NEAR(doneAt[2], 1.3, 1e-9);
  EXPECT_GE(f.viprip.admissionTotals().deferred, 2u);
}

TEST(AdmissionIntegration, ShedRequestSettlesWithOverloaded) {
  auto o = Fixture::options();
  o.admission.maxQueueDepth = 2;
  o.admission.bulkShare = 1.0;
  Fixture f(o);
  const AppId app = f.apps.create("a", AppSla{}, 100.0);

  int ok = 0, overloaded = 0;
  auto submitOne = [&] {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&](Status s) {
      if (s.ok()) {
        ++ok;
      } else if (s.error().code == "overloaded") {
        ++overloaded;
      }
    };
    return f.viprip.submit(std::move(req));
  };
  EXPECT_TRUE(submitOne().accepted);
  EXPECT_TRUE(submitOne().accepted);
  const auto third = submitOne();
  EXPECT_FALSE(third.accepted);
  EXPECT_TRUE(third.overloaded);
  EXPECT_GT(third.retryAfterSeconds, 0.0);
  EXPECT_EQ(overloaded, 1);  // settled synchronously at submit

  f.sim.runUntil(1e6);
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(f.viprip.admissionTotals().shed, 1u);
}

TEST(AdmissionIntegration, DeadlineExpiredSettlesAsRejection) {
  auto o = Fixture::options();
  o.admission.capacityDeadlineSeconds = 0.45;
  Fixture f(o);
  const AppId app = f.apps.create("a", AppSla{}, 100.0);

  int ok = 0, expired = 0;
  for (int i = 0; i < 8; ++i) {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&](Status s) {
      if (s.ok()) {
        ++ok;
      } else if (s.error().code == "deadline_expired") {
        ++expired;
      }
    };
    EXPECT_TRUE(f.viprip.submit(std::move(req)).accepted);
  }
  f.sim.runUntil(1e6);
  // Conflicting NewVips drain one per 0.1s round; entries older than the
  // 0.45s budget at round formation are rejected instead of applied.
  EXPECT_GT(expired, 0);
  EXPECT_EQ(ok + expired, 8);
  EXPECT_EQ(f.viprip.admissionTotals().expired,
            static_cast<std::uint64_t>(expired));
  const auto& byCode = f.viprip.rejectionsByCode();
  ASSERT_TRUE(byCode.contains("deadline_expired"));
  EXPECT_EQ(byCode.at("deadline_expired"),
            static_cast<std::uint64_t>(expired));
}

TEST(AdmissionIntegration, AdmissionTotalsReplayBitIdentical) {
  Fixture f;
  for (int i = 0; i < 4; ++i) {
    const AppId app = f.apps.create("a" + std::to_string(i), AppSla{}, 100.0);
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    EXPECT_TRUE(f.viprip.submit(std::move(req)).accepted);
  }
  f.sim.runUntil(1e6);

  const auto before = f.viprip.admissionTotals();
  EXPECT_GT(before.rounds, 0u);
  EXPECT_EQ(before.admitted, 4u);
  const std::uint64_t hashBefore = f.viprip.stateMachine().stateHash();

  // Replay the write-ahead journal from scratch: the durable admission
  // aggregates — part of the hashed state — must come back bit-identical.
  f.viprip.rebuildIntentFromJournal();
  const auto after = f.viprip.admissionTotals();
  EXPECT_EQ(after.rounds, before.rounds);
  EXPECT_EQ(after.admitted, before.admitted);
  EXPECT_EQ(after.shed, before.shed);
  EXPECT_EQ(after.expired, before.expired);
  EXPECT_EQ(after.deferred, before.deferred);
  EXPECT_EQ(f.viprip.stateMachine().stateHash(), hashBefore);
}

TEST(AdmissionIntegration, CrashCancelsQueuedAndTotalsSurvive) {
  Fixture f;
  const AppId app = f.apps.create("a", AppSla{}, 100.0);
  int cancelled = 0;
  for (int i = 0; i < 3; ++i) {
    VipRipRequest req;
    req.op = VipRipOp::NewVip;
    req.app = app;
    req.done = [&](Status s) {
      if (!s.ok() && s.error().code == "cancelled") ++cancelled;
    };
    EXPECT_TRUE(f.viprip.submit(std::move(req)).accepted);
  }
  f.viprip.crash();
  EXPECT_EQ(cancelled, 3);
  EXPECT_EQ(f.viprip.queueLength(), 0u);
  // A submission into the dead manager is refused, not queued.
  VipRipRequest req;
  req.op = VipRipOp::NewVip;
  req.app = app;
  bool refused = false;
  req.done = [&](Status s) {
    refused = !s.ok() && s.error().code == "manager_down";
  };
  const auto res = f.viprip.submit(std::move(req));
  EXPECT_FALSE(res.accepted);
  EXPECT_TRUE(refused);

  f.viprip.recoverAsLeader(2);
  EXPECT_TRUE(f.viprip.online());
  f.sim.runUntil(1e6);
}

}  // namespace
}  // namespace mdc
