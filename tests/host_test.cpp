// Unit tests for the host fleet: VM lifecycle, capacity accounting, and
// hypervisor operation latencies.
#include <gtest/gtest.h>

#include <cmath>

#include "mdc/host/host_fleet.hpp"
#include "mdc/topo/topology.hpp"

namespace mdc {
namespace {

constexpr AppId kApp{0};

struct Fixture {
  Simulation sim;
  Topology topo;
  HostFleet fleet;

  static TopologyConfig config() {
    TopologyConfig cfg;
    cfg.numServers = 4;
    cfg.serverCapacity = CapacityVec{8.0, 32.0, 1.0};
    cfg.numSwitches = 1;
    return cfg;
  }
  static HostCostModel costs() {
    HostCostModel c;
    c.vmBootSeconds = 60.0;
    c.vmCloneSeconds = 5.0;
    c.capacityAdjustSeconds = 2.0;
    c.migrationGbps = 8.0;  // 1 GB memory -> 1 s
    return c;
  }

  Fixture() : topo(config()), fleet(topo, sim, costs()) {}
};

CapacityVec slice(double cpu = 2.0, double mem = 4.0, double net = 0.25) {
  return CapacityVec{cpu, mem, net};
}

TEST(HostFleet, CreateVmReservesCapacityImmediately) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(f.fleet.usedCapacity(ServerId{0}), slice());
  EXPECT_EQ(f.fleet.vm(r.value()).state, VmState::Booting);
  EXPECT_EQ(f.fleet.vm(r.value()).effectiveSlice, CapacityVec{});
}

TEST(HostFleet, VmBecomesActiveAfterBootLatency) {
  Fixture f;
  bool activated = false;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(), false,
                                  [&](VmId) { activated = true; });
  ASSERT_TRUE(r.ok());
  f.sim.runUntil(59.0);
  EXPECT_FALSE(activated);
  f.sim.runUntil(61.0);
  EXPECT_TRUE(activated);
  EXPECT_EQ(f.fleet.vm(r.value()).state, VmState::Active);
  EXPECT_EQ(f.fleet.vm(r.value()).effectiveSlice, slice());
}

TEST(HostFleet, CloneIsFasterThanBoot) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(), /*clone=*/true);
  ASSERT_TRUE(r.ok());
  f.sim.runUntil(6.0);
  EXPECT_EQ(f.fleet.vm(r.value()).state, VmState::Active);
}

TEST(HostFleet, CreateRejectsOversubscription) {
  Fixture f;
  ASSERT_TRUE(f.fleet.createVm(kApp, ServerId{0}, slice(6.0, 8.0, 0.5)).ok());
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(6.0, 8.0, 0.5));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "insufficient_capacity");
}

TEST(HostFleet, DestroyWhileBootingFreesEverything) {
  Fixture f;
  bool activated = false;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(), false,
                                  [&](VmId) { activated = true; });
  f.fleet.destroyVm(r.value());
  f.sim.runUntil(120.0);
  EXPECT_FALSE(activated);
  EXPECT_EQ(f.fleet.usedCapacity(ServerId{0}), CapacityVec{});
  EXPECT_FALSE(f.fleet.vmExists(r.value()));
  EXPECT_EQ(f.fleet.activeVmCount(), 0u);
}

TEST(HostFleet, AdjustCapacityGrow) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(2.0, 4.0, 0.25));
  f.sim.runUntil(61.0);
  bool done = false;
  ASSERT_TRUE(f.fleet
                  .adjustVmCapacity(r.value(), slice(4.0, 4.0, 0.5),
                                    [&](VmId) { done = true; })
                  .ok());
  // During the transition the reservation is the pointwise max.
  EXPECT_DOUBLE_EQ(f.fleet.usedCapacity(ServerId{0}).cpu(), 4.0);
  f.sim.runUntil(64.0);
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.fleet.vm(r.value()).effectiveSlice.cpu(), 4.0);
  EXPECT_DOUBLE_EQ(f.fleet.usedCapacity(ServerId{0}).cpu(), 4.0);
}

TEST(HostFleet, AdjustCapacityShrinkFreesAfterDelay) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(4.0, 4.0, 0.5));
  f.sim.runUntil(61.0);
  ASSERT_TRUE(f.fleet.adjustVmCapacity(r.value(), slice(2.0, 4.0, 0.25)).ok());
  // Shrink keeps the old reservation until it completes.
  EXPECT_DOUBLE_EQ(f.fleet.usedCapacity(ServerId{0}).cpu(), 4.0);
  f.sim.runUntil(64.0);
  EXPECT_DOUBLE_EQ(f.fleet.usedCapacity(ServerId{0}).cpu(), 2.0);
}

TEST(HostFleet, AdjustRejectsWhenPeakDoesNotFit) {
  Fixture f;
  const auto a = f.fleet.createVm(kApp, ServerId{0}, slice(4.0, 16.0, 0.5));
  const auto b = f.fleet.createVm(kApp, ServerId{0}, slice(4.0, 16.0, 0.5));
  (void)b;
  f.sim.runUntil(61.0);
  const Status s = f.fleet.adjustVmCapacity(a.value(), slice(5.0, 16.0, 0.5));
  EXPECT_EQ(s.error().code, "insufficient_capacity");
}

TEST(HostFleet, AdjustRequiresActiveVm) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice());
  EXPECT_EQ(f.fleet.adjustVmCapacity(r.value(), slice()).error().code,
            "vm_not_active");
}

TEST(HostFleet, MigrationMovesVmAfterTransfer) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice(2.0, 4.0, 0.25));
  f.sim.runUntil(61.0);
  bool done = false;
  ASSERT_TRUE(
      f.fleet.migrateVm(r.value(), ServerId{1}, [&](VmId) { done = true; })
          .ok());
  EXPECT_EQ(f.fleet.vm(r.value()).state, VmState::Migrating);
  // Both reservations held during migration.
  EXPECT_DOUBLE_EQ(f.fleet.usedCapacity(ServerId{0}).cpu(), 2.0);
  EXPECT_DOUBLE_EQ(f.fleet.usedCapacity(ServerId{1}).cpu(), 2.0);
  // 4 GB * 8 / 8 Gbps = 4 s.
  f.sim.runUntil(64.0);
  EXPECT_FALSE(done);
  f.sim.runUntil(66.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(f.fleet.vm(r.value()).server, ServerId{1});
  EXPECT_EQ(f.fleet.vm(r.value()).state, VmState::Active);
  EXPECT_EQ(f.fleet.usedCapacity(ServerId{0}), CapacityVec{});
  EXPECT_DOUBLE_EQ(f.fleet.migratedGb(), 4.0);
}

TEST(HostFleet, MigrationRejectsSameServerAndFullDestination) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice());
  f.sim.runUntil(61.0);
  EXPECT_EQ(f.fleet.migrateVm(r.value(), ServerId{0}).error().code,
            "same_server");
  // Fill server 1.
  ASSERT_TRUE(f.fleet.createVm(kApp, ServerId{1}, slice(8.0, 32.0, 1.0)).ok());
  EXPECT_EQ(f.fleet.migrateVm(r.value(), ServerId{1}).error().code,
            "insufficient_capacity");
}

TEST(HostFleet, DestroyDuringMigrationReleasesBothReservations) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice());
  f.sim.runUntil(61.0);
  ASSERT_TRUE(f.fleet.migrateVm(r.value(), ServerId{1}).ok());
  f.fleet.destroyVm(r.value());
  EXPECT_EQ(f.fleet.usedCapacity(ServerId{0}), CapacityVec{});
  EXPECT_EQ(f.fleet.usedCapacity(ServerId{1}), CapacityVec{});
  f.sim.runUntil(120.0);  // completion callback must be a no-op
  EXPECT_EQ(f.fleet.usedCapacity(ServerId{1}), CapacityVec{});
}

TEST(HostFleet, ServerUtilizationUsesBindingResource) {
  Fixture f;
  ASSERT_TRUE(f.fleet.createVm(kApp, ServerId{0}, slice(2.0, 4.0, 0.75)).ok());
  // net: 0.75/1.0 = 0.75 is the binding dimension.
  EXPECT_DOUBLE_EQ(f.fleet.serverUtilization(ServerId{0}), 0.75);
}

TEST(HostFleet, VmsOnTracksPlacement) {
  Fixture f;
  const auto a = f.fleet.createVm(kApp, ServerId{2}, slice());
  const auto b = f.fleet.createVm(kApp, ServerId{2}, slice());
  EXPECT_EQ(f.fleet.vmsOn(ServerId{2}).size(), 2u);
  f.fleet.destroyVm(a.value());
  ASSERT_EQ(f.fleet.vmsOn(ServerId{2}).size(), 1u);
  EXPECT_EQ(f.fleet.vmsOn(ServerId{2})[0], b.value());
}

TEST(HostFleet, OperationCounters) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice());
  f.sim.runUntil(61.0);
  ASSERT_TRUE(f.fleet.adjustVmCapacity(r.value(), slice(3.0, 4.0, 0.25)).ok());
  f.sim.runUntil(64.0);
  ASSERT_TRUE(f.fleet.migrateVm(r.value(), ServerId{1}).ok());
  EXPECT_EQ(f.fleet.vmsCreated(), 1u);
  EXPECT_EQ(f.fleet.capacityAdjustments(), 1u);
  EXPECT_EQ(f.fleet.migrationsStarted(), 1u);
}

TEST(HostFleet, DoubleDestroyThrows) {
  Fixture f;
  const auto r = f.fleet.createVm(kApp, ServerId{0}, slice());
  f.fleet.destroyVm(r.value());
  EXPECT_THROW(f.fleet.destroyVm(r.value()), PreconditionError);
}

}  // namespace
}  // namespace mdc
