// Unit tests for the authoritative DNS and resolver-population model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdc/dns/dns.hpp"

namespace mdc {
namespace {

constexpr AppId kApp{0};
constexpr VipId kV0{0};
constexpr VipId kV1{1};
constexpr VipId kV2{2};

AuthoritativeDns makeDns() {
  AuthoritativeDns dns;
  dns.registerApp(kApp);
  dns.addVip(kApp, kV0, 1.0);
  dns.addVip(kApp, kV1, 1.0);
  return dns;
}

TEST(AuthoritativeDns, RegisterAndQuery) {
  AuthoritativeDns dns = makeDns();
  EXPECT_TRUE(dns.hasApp(kApp));
  EXPECT_FALSE(dns.hasApp(AppId{9}));
  EXPECT_EQ(dns.vips(kApp).size(), 2u);
}

TEST(AuthoritativeDns, DuplicateRegistrationThrows) {
  AuthoritativeDns dns = makeDns();
  EXPECT_THROW(dns.registerApp(kApp), PreconditionError);
  EXPECT_THROW(dns.addVip(kApp, kV0), PreconditionError);
}

TEST(AuthoritativeDns, WeightUpdatesBumpGeneration) {
  AuthoritativeDns dns = makeDns();
  const auto g0 = dns.generation(kApp);
  dns.setWeight(kApp, kV0, 5.0);
  EXPECT_GT(dns.generation(kApp), g0);
  // Setting the same weight again is a no-op.
  const auto g1 = dns.generation(kApp);
  dns.setWeight(kApp, kV0, 5.0);
  EXPECT_EQ(dns.generation(kApp), g1);
}

TEST(AuthoritativeDns, SetWeightsBulk) {
  AuthoritativeDns dns = makeDns();
  const std::vector<VipWeight> w{{kV0, 0.0}, {kV1, 3.0}};
  dns.setWeights(kApp, w);
  EXPECT_EQ(dns.vips(kApp)[0].weight, 0.0);
  EXPECT_EQ(dns.vips(kApp)[1].weight, 3.0);
}

TEST(AuthoritativeDns, ResolveRespectsWeights) {
  AuthoritativeDns dns = makeDns();
  dns.setWeight(kApp, kV0, 0.0);
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dns.resolve(kApp, rng), kV1);
}

TEST(AuthoritativeDns, RemoveVip) {
  AuthoritativeDns dns = makeDns();
  dns.removeVip(kApp, kV0);
  EXPECT_EQ(dns.vips(kApp).size(), 1u);
  EXPECT_THROW(dns.removeVip(kApp, kV0), PreconditionError);
}

TEST(AuthoritativeDns, RecordUpdateCounting) {
  AuthoritativeDns dns;
  dns.registerApp(kApp);
  EXPECT_EQ(dns.recordUpdates(), 0u);
  dns.addVip(kApp, kV0, 1.0);
  dns.setWeight(kApp, kV0, 2.0);
  dns.removeVip(kApp, kV0);
  EXPECT_EQ(dns.recordUpdates(), 3u);
}

ResolverConfig fastConfig() {
  ResolverConfig cfg;
  cfg.ttlSeconds = 60.0;
  cfg.lingerFraction = 0.0;
  cfg.lingerSeconds = 1800.0;
  return cfg;
}

TEST(ResolverPopulation, StartsAtAuthoritativeWeights) {
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  EXPECT_NEAR(pop.share(kApp, kV0), 0.5, 1e-12);
  EXPECT_NEAR(pop.share(kApp, kV1), 0.5, 1e-12);
}

TEST(ResolverPopulation, SharesSumToOne) {
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  dns.setWeights(kApp, std::vector<VipWeight>{{kV0, 1.0}, {kV1, 9.0}});
  pop.advance(30.0);
  double sum = 0.0;
  for (const auto& vw : pop.shares(kApp)) sum += vw.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ResolverPopulation, RelaxesTowardTargetAtTtlRate) {
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  (void)pop.shares(kApp);  // initialize the pool in steady state
  dns.setWeights(kApp, std::vector<VipWeight>{{kV0, 0.0}, {kV1, 1.0}});
  // After one TTL, the gap should have closed by 1 - e^-1 ~ 63%.
  pop.advance(60.0);
  EXPECT_NEAR(pop.share(kApp, kV1), 0.5 + 0.5 * (1.0 - std::exp(-1.0)),
              1e-6);
  // After many TTLs the share converges.
  pop.advance(600.0);
  EXPECT_NEAR(pop.share(kApp, kV1), 1.0, 1e-3);
}

TEST(ResolverPopulation, LingerersSlowConvergence) {
  AuthoritativeDns dnsA = makeDns();
  ResolverConfig lingering = fastConfig();
  lingering.lingerFraction = 0.2;
  ResolverPopulation pop{dnsA, lingering};
  (void)pop.shares(kApp);
  dnsA.setWeights(kApp, std::vector<VipWeight>{{kV0, 0.0}, {kV1, 1.0}});
  pop.advance(300.0);  // 5 TTLs: compliant clients have moved
  const double v0 = pop.share(kApp, kV0);
  // Lingerers (20% of demand, tau 1800s) still hold a noticeable share.
  EXPECT_GT(v0, 0.05);
  EXPECT_LT(v0, 0.2);
}

TEST(ResolverPopulation, NewVipStartsAtZeroShare) {
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  (void)pop.shares(kApp);
  dns.addVip(kApp, kV2, 1.0);
  EXPECT_NEAR(pop.share(kApp, kV2), 0.0, 1e-12);
  pop.advance(600.0);
  EXPECT_NEAR(pop.share(kApp, kV2), 1.0 / 3.0, 1e-3);
}

TEST(ResolverPopulation, RemovedVipShareDecaysNotVanishes) {
  // Models the §IV-B hazard: clients keep using a VIP after DNS stops
  // exposing it, so a transfer cannot be immediate.
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  (void)pop.shares(kApp);
  dns.removeVip(kApp, kV0);
  EXPECT_NEAR(pop.share(kApp, kV0), 0.5, 1e-12);  // still held by caches
  pop.advance(60.0);
  const double after1 = pop.share(kApp, kV0);
  EXPECT_GT(after1, 0.1);
  pop.advance(1200.0);
  EXPECT_LT(pop.share(kApp, kV0), 1e-6);
}

TEST(ResolverPopulation, PickVipFollowsShares) {
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  dns.setWeights(kApp, std::vector<VipWeight>{{kV0, 1.0}, {kV1, 0.0}});
  Rng rng{3};
  (void)pop.shares(kApp);
  pop.advance(6000.0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(pop.pickVip(kApp, rng), kV0);
}

TEST(ResolverPopulation, AdvanceBackwardsThrows) {
  AuthoritativeDns dns = makeDns();
  ResolverPopulation pop{dns, fastConfig()};
  pop.advance(10.0);
  EXPECT_THROW(pop.advance(5.0), PreconditionError);
}

TEST(ResolverPopulation, ConfigValidation) {
  AuthoritativeDns dns = makeDns();
  ResolverConfig bad = fastConfig();
  bad.ttlSeconds = 0.0;
  EXPECT_THROW((ResolverPopulation{dns, bad}), PreconditionError);
  bad = fastConfig();
  bad.lingerFraction = 1.5;
  EXPECT_THROW((ResolverPopulation{dns, bad}), PreconditionError);
}

}  // namespace
}  // namespace mdc
