// Whole-world consistency checks after an eventful run: every RIP points
// at a live VM, every exposed VIP is backed, ownership indices agree, and
// capacity accounting balances.  (Grown out of a debugging harness; kept
// as a cross-cutting invariant suite.)
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "mdc/scenario/megadc.hpp"

namespace mdc {
namespace {

void checkWorldInvariants(MegaDc& dc) {
  // (1) Every RIP on every switch references a live VM or an m-VIP.
  dc.fleet.forEach([&](const LbSwitch& sw) {
    for (VipId vip : sw.vipIds()) {
      const VipEntry* e = sw.findVip(vip);
      ASSERT_NE(e, nullptr);
      for (const RipEntry& r : e->rips) {
        if (r.targetsVm()) {
          EXPECT_TRUE(dc.hosts.vmExists(r.vm))
              << "switch " << sw.id() << " vip " << vip
              << " references destroyed vm " << r.vm;
        }
      }
    }
  });

  // (2) Every DNS-exposed VIP (weight > 0) has at least one RIP.
  for (const Application& a : dc.apps.all()) {
    if (!dc.dns.hasApp(a.id)) continue;
    for (const VipWeight& vw : dc.dns.vips(a.id)) {
      if (vw.weight <= 0.0) continue;
      const auto owner = dc.fleet.ownerOf(vw.vip);
      ASSERT_TRUE(owner.has_value());
      const VipEntry* e = dc.fleet.at(*owner).findVip(vw.vip);
      ASSERT_NE(e, nullptr);
      EXPECT_FALSE(e->rips.empty())
          << "exposed vip " << vw.vip << " has no RIPs";
    }
  }

  // (3) Ownership index agrees with switch tables.
  dc.fleet.forEach([&](const LbSwitch& sw) {
    for (VipId vip : sw.vipIds()) {
      const auto owner = dc.fleet.ownerOf(vip);
      ASSERT_TRUE(owner.has_value());
      EXPECT_EQ(*owner, sw.id());
    }
  });

  // (4) Per-server used capacity equals the sum of resident VM slices.
  for (const ServerInfo& s : dc.topo.servers()) {
    CapacityVec sum;
    for (VmId vm : dc.hosts.vmsOn(s.id)) {
      if (dc.hosts.vmExists(vm)) sum += dc.hosts.vm(vm).slice;
    }
    const CapacityVec used = dc.hosts.usedCapacity(s.id);
    EXPECT_NEAR(used.cpu(), sum.cpu(), 1e-6);
    EXPECT_NEAR(used.memory(), sum.memory(), 1e-6);
    EXPECT_NEAR(used.network(), sum.network(), 1e-6);
  }

  // (5) App instance lists reference live VMs of that app.
  for (const Application& a : dc.apps.all()) {
    for (VmId vm : a.instances) {
      if (!dc.hosts.vmExists(vm)) continue;  // retiring
      EXPECT_EQ(dc.hosts.vm(vm).app, a.id);
    }
  }
}

TEST(WorldInvariants, SteadyState) {
  MegaDc dc{testScaleConfig()};
  dc.bootstrap();
  dc.runUntil(dc.sim.now() + 200.0);
  checkWorldInvariants(dc);
  EXPECT_LT(dc.engine->latest().unroutedRps, 1.0);
}

TEST(WorldInvariants, AfterFlashCrowdChurn) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  const auto rates =
      zipfBaseRates(cfg.numApps, cfg.zipfAlpha, cfg.totalDemandRps);
  FlashCrowdDemand::Spike spike;
  spike.app = AppId{3};
  spike.start = 60.0;
  spike.end = 360.0;
  spike.multiplier = 8.0;
  spike.rampSeconds = 20.0;
  dc.setDemandModel(std::make_unique<FlashCrowdDemand>(
      std::make_unique<StaticDemand>(rates),
      std::vector<FlashCrowdDemand::Spike>{spike}));
  dc.bootstrap();
  dc.runUntil(600.0);  // through the spike and the scale-in afterwards
  checkWorldInvariants(dc);
  // Unrouted demand must have cleared once churn settled.
  EXPECT_LT(dc.engine->latest().unroutedRps, 1.0);
}

TEST(WorldInvariants, AfterRandomWalkChurn) {
  MegaDcConfig cfg = testScaleConfig();
  MegaDc dc{cfg};
  const auto rates =
      zipfBaseRates(cfg.numApps, cfg.zipfAlpha, cfg.totalDemandRps);
  dc.setDemandModel(
      std::make_unique<RandomWalkDemand>(rates, 0.35, 45.0, cfg.seed));
  dc.bootstrap();
  dc.runUntil(500.0);
  checkWorldInvariants(dc);
}

}  // namespace
}  // namespace mdc
